/**
 * @file
 * gem5-style status reporting helpers.
 *
 * inform()/warn()/debugLog() print status without stopping the
 * program; panic() reports an internal invariant violation and throws
 * a StatusError (StatusCode::Internal).  User errors are reported via
 * the Status types in common/status.hpp — the library never calls
 * exit()/abort(); only the CLI drivers under tools/ turn errors into
 * exit codes.
 *
 * All reporting functions are thread-safe: each message is formatted
 * into a single buffer and written with one stdio call, so output
 * from parallel sweep workers never interleaves mid-line.  Every line
 * is prefixed with a UTC wall-clock timestamp, the writer's trace
 * thread tag and — inside a serve request — the request id
 * ("2026-08-08T17:00:00.123Z [t3 r42] info: ...").  Verbosity is
 * controlled by an atomic log level (setLogLevel / --log-level).
 */

#ifndef NNBATON_COMMON_LOGGING_HPP
#define NNBATON_COMMON_LOGGING_HPP

#include <cstdarg>
#include <string>

namespace nnbaton {

/** Message severities, in increasing order of importance. */
enum class LogLevel
{
    Debug = 0, //!< debugLog(): extra detail for developers
    Info = 1,  //!< inform(): normal progress (the default level)
    Warn = 2,  //!< warn(): suspicious but recoverable
    Quiet = 3, //!< only panic() (which always prints)
};

/** Set the minimum severity that gets printed (atomic, thread-safe). */
void setLogLevel(LogLevel level);

/** The current minimum printed severity. */
LogLevel logLevel();

/**
 * Parse "debug" / "info" / "warn" / "quiet" into a level.  Returns
 * false (leaving @p out untouched) for anything else.
 */
bool parseLogLevel(const std::string &name, LogLevel &out);

/** Print a debug message to stderr (prefixed "debug:"). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr (prefixed "info:"). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning message to stderr (prefixed "warn:"). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation: print the message and throw
 * a StatusError with StatusCode::Internal.  Use for conditions that
 * should never happen regardless of input.  Callers that cannot
 * tolerate unwinding (the sweep engine's workers) quarantine the
 * exception; the CLI turns it into a nonzero exit.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Enable/disable inform() output (benches silence it).  Kept as a
 * shim over setLogLevel: enabled maps to Info, disabled to Warn.
 */
void setInformEnabled(bool enabled);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** va_list variant of strprintf (shared by the Status builders). */
std::string vstrprintf(const char *fmt, va_list ap);

/**
 * The current wall-clock time as "2026-08-08T17:00:00.123Z" (UTC,
 * millisecond precision).  Used by the log-line prefix and the serve
 * access log.
 */
std::string wallClockIso8601();

} // namespace nnbaton

#endif // NNBATON_COMMON_LOGGING_HPP
