/**
 * @file
 * End-of-run profiling reports: aggregate the collected trace spans
 * per phase (span name) into count / total / mean / max, render them
 * as a table for stderr, and embed them in the JSON exports.
 *
 * The profiler consumes whatever the trace layer collected, so a run
 * without tracing produces an empty report; it performs no timing of
 * its own.
 */

#ifndef NNBATON_COMMON_PROFILE_HPP
#define NNBATON_COMMON_PROFILE_HPP

#include <string>
#include <vector>

#include "common/trace.hpp"

namespace nnbaton {

class JsonWriter; // common/json.hpp

namespace obs {

/** Aggregated statistics for one span name. */
struct PhaseProfile
{
    std::string name;
    int64_t count = 0;
    double totalMs = 0.0;
    double meanUs = 0.0;
    double maxUs = 0.0;
};

/** Per-phase aggregation of a trace, sorted by total time spent. */
struct ProfileReport
{
    std::vector<PhaseProfile> phases;
    int64_t events = 0;  //!< spans aggregated
    int64_t dropped = 0; //!< spans lost to buffer caps

    bool
    empty() const
    {
        return phases.empty();
    }
};

/** Aggregate an explicit list of spans (e.g. a snapshot delta). */
ProfileReport buildProfile(const std::vector<TraceEvent> &events);

/** Aggregate everything collected so far (snapshotTrace()). */
ProfileReport buildProfile();

/** Render the report as a column-aligned table. */
std::string formatProfile(const ProfileReport &report);

/** Write the report as one JSON object value (key set by caller). */
void writeProfileJson(JsonWriter &j, const ProfileReport &report);

} // namespace obs
} // namespace nnbaton

#endif // NNBATON_COMMON_PROFILE_HPP
