/**
 * @file
 * A minimal thread-pool / parallel-for utility for the sweep engines
 * (no external dependencies, std::thread + an atomic work queue).
 *
 * Design rules, chosen for the DSE and mapping-search callers:
 *
 *  - The calling thread participates in the work, so a pool with N
 *    workers runs N + 1 lanes and `ThreadPool(0)` degenerates to a
 *    plain serial loop.
 *  - Nested parallelFor() calls run inline on the calling worker
 *    (nested-free): the sweep parallelises across design points and
 *    the per-point mapping searches then execute serially inside the
 *    worker, so thread counts never multiply.
 *  - The first exception thrown by any index is captured, remaining
 *    indices are abandoned, and the exception is rethrown on the
 *    calling thread after all workers drain.
 *  - Indices are handed out through a single atomic counter, so the
 *    schedule is work-stealing-free and allocation-free; callers that
 *    need determinism must make per-index work order-independent
 *    (write to slot i, reduce afterwards in index order).
 */

#ifndef NNBATON_COMMON_PARALLEL_HPP
#define NNBATON_COMMON_PARALLEL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nnbaton {

/** std::thread::hardware_concurrency with a floor of one. */
int hardwareThreads();

/**
 * A persistent pool of worker threads executing blocking
 * parallel-for jobs.
 *
 * @code
 *   ThreadPool pool(4);             // 3 workers + the caller
 *   std::vector<double> out(n);
 *   pool.parallelFor(n, [&](int64_t i) { out[i] = f(i); });
 * @endcode
 */
class ThreadPool
{
  public:
    /**
     * @p threads is the total lane count including the calling
     * thread; values <= 1 create no workers (serial pool).
     */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total execution lanes (workers + the calling thread). */
    int threads() const
    {
        return static_cast<int>(workers_.size()) + 1;
    }

    /**
     * Run fn(i) for every i in [0, n).  Blocks until all indices
     * finish; rethrows the first exception.  Serial (inline) when the
     * pool has no workers, when n <= 1, or when called from inside a
     * parallelFor body (nested-free guarantee).
     */
    void parallelFor(int64_t n, const std::function<void(int64_t)> &fn);

    /** True while the current thread executes a parallelFor body. */
    static bool inParallelRegion();

  private:
    void workerLoop();
    void runIndices(const std::function<void(int64_t)> &fn);

    std::vector<std::thread> workers_;

    std::mutex m_;
    std::condition_variable wake_; //!< workers wait for a job
    std::condition_variable done_; //!< caller waits for completion
    uint64_t jobId_ = 0;           //!< bumped per parallelFor call
    int active_ = 0;               //!< workers still in the current job
    bool stop_ = false;

    // Current job (valid while active_ > 0 or the caller is running).
    const std::function<void(int64_t)> *fn_ = nullptr;
    int64_t n_ = 0;
    std::atomic<int64_t> next_{0};
    std::exception_ptr error_; //!< first captured exception
};

} // namespace nnbaton

#endif // NNBATON_COMMON_PARALLEL_HPP
