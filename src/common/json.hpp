/**
 * @file
 * A minimal streaming JSON writer for the export interfaces (mapping
 * reports for the hardware compiler, DSE dumps for plotting).  Scope
 * is limited to what the library emits: objects, arrays, strings,
 * integers, doubles and booleans, with correct escaping and
 * machine-stable number formatting.
 */

#ifndef NNBATON_COMMON_JSON_HPP
#define NNBATON_COMMON_JSON_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace nnbaton {

/**
 * Streaming JSON writer with explicit begin/end nesting.
 *
 * @code
 *   JsonWriter j(os);
 *   j.beginObject();
 *   j.key("name").value("conv1");
 *   j.key("tiles").beginArray().value(4).value(8).endArray();
 *   j.endObject();
 * @endcode
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Write an object key; must be followed by a value or begin*(). */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(int v) { return value(static_cast<int64_t>(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, T v)
    {
        key(name);
        return value(v);
    }

  private:
    void separator();
    void escape(const std::string &s);

    std::ostream &os_;
    std::vector<bool> hasElement_; //!< per nesting level
    bool pendingKey_ = false;
};

} // namespace nnbaton

#endif // NNBATON_COMMON_JSON_HPP
