/**
 * @file
 * A minimal streaming JSON writer for the export interfaces (mapping
 * reports for the hardware compiler, DSE dumps for plotting), plus a
 * small recursive-descent parser (JsonValue / parseJson) so tests and
 * tools can round-trip what the library emits.  Scope is limited to
 * what the library needs: objects, arrays, strings, numbers and
 * booleans, with correct escaping and machine-stable number
 * formatting.
 */

#ifndef NNBATON_COMMON_JSON_HPP
#define NNBATON_COMMON_JSON_HPP

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace nnbaton {

/**
 * Streaming JSON writer with explicit begin/end nesting.
 *
 * @code
 *   JsonWriter j(os);
 *   j.beginObject();
 *   j.key("name").value("conv1");
 *   j.key("tiles").beginArray().value(4).value(8).endArray();
 *   j.endObject();
 * @endcode
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Write an object key; must be followed by a value or begin*(). */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(int v) { return value(static_cast<int64_t>(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);

    /**
     * Write a double with full round-trip precision (%.17g instead of
     * value()'s display-oriented %.9g).  Checkpoints use this so a
     * resumed sweep restores bit-identical scores.
     */
    JsonWriter &valueExact(double v);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, T v)
    {
        key(name);
        return value(v);
    }

    /** key() + valueExact() in one call. */
    JsonWriter &
    fieldExact(const std::string &name, double v)
    {
        key(name);
        return valueExact(v);
    }

  private:
    void separator();
    void escape(const std::string &s);

    std::ostream &os_;
    std::vector<bool> hasElement_; //!< per nesting level
    bool pendingKey_ = false;
};

/**
 * A parsed JSON document node.  Objects keep their members in
 * insertion order (the writer's emit order), numbers are stored as
 * doubles (the writer never emits integers above 2^53).
 */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member by key, or nullptr (also for non-objects). */
    const JsonValue *find(const std::string &key) const;
};

/** parseJson() outcome: a value, or an error with its text offset. */
struct JsonParseResult
{
    JsonValue value;
    std::string error; //!< empty on success
    size_t errorOffset = 0;

    bool ok() const { return error.empty(); }
};

/** Parse one JSON document; trailing whitespace is allowed. */
JsonParseResult parseJson(const std::string &text);

} // namespace nnbaton

#endif // NNBATON_COMMON_JSON_HPP
