/**
 * @file
 * Strict numeric parsing for CLI flags and other untrusted text.
 *
 * The whole token must be a number in range, otherwise an
 * errInvalidArgument naming the option comes back (atoi would
 * silently read "x" as 0).  Library code so the fuzz tests can hammer
 * the same paths the CLI uses.
 */

#ifndef NNBATON_COMMON_PARSE_HPP
#define NNBATON_COMMON_PARSE_HPP

#include <cstdint>

#include "common/status.hpp"

namespace nnbaton {

/** Parse @p text as a positive int64; @p opt names the flag in the
 *  error message. */
StatusOr<int64_t> parsePositiveInt64(const char *opt, const char *text);

/** parsePositiveInt64 further restricted to int range. */
StatusOr<int> parsePositiveInt(const char *opt, const char *text);

/** Parse @p text as a finite double > 0. */
StatusOr<double> parsePositiveDouble(const char *opt, const char *text);

} // namespace nnbaton

#endif // NNBATON_COMMON_PARSE_HPP
