/**
 * @file
 * A thread-safe metrics registry for the DSE/mapping pipeline:
 * counters (monotonic), gauges (last-written value) and histograms
 * with fixed log2 buckets.
 *
 * Instruments register by name ("subsystem.what", dot-separated) and
 * are process-wide; hot paths should cache the returned reference in
 * a function-local static so the name lookup happens once:
 *
 * @code
 *   static obs::Counter &evals =
 *       obs::MetricsRegistry::instance().counter(
 *           "mapper.candidates.evaluated");
 *   evals.add(survivors);
 * @endcode
 *
 * Updates are relaxed atomics (lock-free, no ordering guarantees
 * between different instruments); registration and snapshotting take
 * a registry mutex.  reset() zeroes every registered instrument so
 * tests and benches can measure deltas.
 */

#ifndef NNBATON_COMMON_METRICS_HPP
#define NNBATON_COMMON_METRICS_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace nnbaton {

class JsonWriter;  // common/json.hpp
struct JsonValue;  // common/json.hpp

namespace obs {

/** A monotonically increasing counter. */
class Counter
{
  public:
    void
    add(int64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    int64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        v_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> v_{0};
};

/** A last-written-value gauge. */
class Gauge
{
  public:
    void
    set(double v)
    {
        v_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        v_.store(0.0, std::memory_order_relaxed);
    }

  private:
    std::atomic<double> v_{0.0};
};

/**
 * A histogram over non-negative integers with fixed log2 buckets:
 * bucket 0 holds values <= 0 and bucket k >= 1 holds
 * [2^(k-1), 2^k - 1], so bucket 1 is exactly {1}, bucket 2 is {2,3},
 * bucket 3 is {4..7}, and the last bucket absorbs everything above
 * 2^(kBuckets-2).
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 64;

    /** Bucket index for @p v (see the class comment for the bounds). */
    static int bucketIndex(int64_t v);

    /** Smallest value mapping to bucket @p b (0 for bucket 0). */
    static int64_t bucketLowerBound(int b);

    /** Largest value mapping to bucket @p b. */
    static int64_t bucketUpperBound(int b);

    void
    record(int64_t v)
    {
        buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
        // CAS loops because there is no fetch_min/fetch_max; contention
        // is rare (only values extending the observed range loop).
        int64_t cur = min_.load(std::memory_order_relaxed);
        while (v < cur &&
               !min_.compare_exchange_weak(cur, v,
                                           std::memory_order_relaxed)) {
        }
        cur = max_.load(std::memory_order_relaxed);
        while (v > cur &&
               !max_.compare_exchange_weak(cur, v,
                                           std::memory_order_relaxed)) {
        }
    }

    int64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    int64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /** Smallest recorded value (0 when the histogram is empty). */
    int64_t
    minValue() const
    {
        return count() ? min_.load(std::memory_order_relaxed) : 0;
    }

    /** Largest recorded value (0 when the histogram is empty). */
    int64_t
    maxValue() const
    {
        return count() ? max_.load(std::memory_order_relaxed) : 0;
    }

    int64_t
    bucketCount(int b) const
    {
        return buckets_[b].load(std::memory_order_relaxed);
    }

    void reset();

  private:
    static constexpr int64_t kInt64Max = INT64_MAX;
    static constexpr int64_t kInt64Min = INT64_MIN;

    std::array<std::atomic<int64_t>, kBuckets> buckets_{};
    std::atomic<int64_t> count_{0};
    std::atomic<int64_t> sum_{0};
    std::atomic<int64_t> min_{kInt64Max};
    std::atomic<int64_t> max_{kInt64Min};
};

/** A point-in-time copy of one histogram. */
struct HistogramSnapshot
{
    std::string name;
    int64_t count = 0;
    int64_t sum = 0;
    int64_t minValue = 0; //!< smallest recorded value (0 when empty)
    int64_t maxValue = 0; //!< largest recorded value (0 when empty)
    std::array<int64_t, Histogram::kBuckets> buckets{};

    double
    mean() const
    {
        return count ? static_cast<double>(sum) / count : 0.0;
    }

    /**
     * Estimate the @p q quantile (q in [0,1]) from the log2 buckets by
     * linear interpolation inside the containing bucket, with the
     * bucket bounds clamped to [minValue, maxValue] so the estimate is
     * exact whenever the containing bucket holds a single distinct
     * value (and q=0 / q=1 return the true min / max).  Returns 0 for
     * an empty histogram.  The error is bounded by the width of the
     * containing bucket.
     */
    double quantile(double q) const;
};

/** A point-in-time copy of every registered instrument. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, int64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;
};

/** The process-wide instrument registry. */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Find-or-create; references stay valid for the process. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Zero every registered instrument (names stay registered). */
    void reset();

    MetricsSnapshot snapshot() const;

  private:
    MetricsRegistry() = default;

    mutable std::mutex m_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** Render a snapshot as a column-aligned table (the --metrics view). */
std::string formatMetrics(const MetricsSnapshot &snapshot);

/** Write a snapshot as one JSON object value (key set by caller). */
void writeMetricsJson(JsonWriter &j, const MetricsSnapshot &snapshot);

/**
 * Write a snapshot in the Prometheus text exposition format: one
 * `# TYPE` line per metric, names prefixed "nnbaton_" with dots
 * mapped to underscores, counters suffixed "_total", and histograms
 * expanded into cumulative `_bucket{le="..."}` series (ending in
 * le="+Inf") plus `_sum` / `_count` and p50/p90/p99 gauges.
 */
void writePrometheus(std::ostream &os, const MetricsSnapshot &snapshot);

/**
 * Rebuild a snapshot from the writeMetricsJson() document (the bare
 * object, as returned by the serve `metrics` op).  Strict about
 * structure so a scraping client fails loudly on drift.
 */
StatusOr<MetricsSnapshot> metricsSnapshotFromJson(const JsonValue &root);

} // namespace obs
} // namespace nnbaton

#endif // NNBATON_COMMON_METRICS_HPP
