#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace nnbaton {

namespace {

bool informEnabled = true;

void
vreport(const char *prefix, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s", prefix);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // namespace

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

void
inform(const char *fmt, ...)
{
    if (!informEnabled)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info: ", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn: ", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace nnbaton
