#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <vector>

#include "common/status.hpp"
#include "common/trace.hpp"

namespace nnbaton {

namespace {

std::atomic<int> currentLevel{static_cast<int>(LogLevel::Info)};

/**
 * "<timestamp> [t<thread> r<request>] " — the wall clock, the small
 * trace thread tag and (when inside a request) the request id, so log
 * lines from parallel workers and daemon lanes can be correlated with
 * spans, flight-recorder events and access-log records.
 */
std::string
linePrefix()
{
    const uint64_t rid = obs::currentRequestId();
    if (rid) {
        return strprintf("%s [t%u r%llu] ", wallClockIso8601().c_str(),
                         obs::currentThreadTag(),
                         static_cast<unsigned long long>(rid));
    }
    return strprintf("%s [t%u] ", wallClockIso8601().c_str(),
                     obs::currentThreadTag());
}

/**
 * Format prefix + message + newline into one buffer and emit it with
 * a single fwrite, so concurrent reporters never interleave mid-line
 * (stdio locks the stream per call).
 */
void
vreport(const char *prefix, const char *fmt, va_list ap)
{
    std::string line = linePrefix() + prefix + vstrprintf(fmt, ap) +
                       "\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
}

bool
levelEnabled(LogLevel level)
{
    return static_cast<int>(level) >=
           currentLevel.load(std::memory_order_relaxed);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    currentLevel.store(static_cast<int>(level),
                       std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        currentLevel.load(std::memory_order_relaxed));
}

bool
parseLogLevel(const std::string &name, LogLevel &out)
{
    if (name == "debug")
        out = LogLevel::Debug;
    else if (name == "info")
        out = LogLevel::Info;
    else if (name == "warn")
        out = LogLevel::Warn;
    else if (name == "quiet")
        out = LogLevel::Quiet;
    else
        return false;
    return true;
}

void
setInformEnabled(bool enabled)
{
    setLogLevel(enabled ? LogLevel::Info : LogLevel::Warn);
}

void
debugLog(const char *fmt, ...)
{
    if (!levelEnabled(LogLevel::Debug))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("debug: ", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!levelEnabled(LogLevel::Info))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info: ", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (!levelEnabled(LogLevel::Warn))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn: ", fmt, ap);
    va_end(ap);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string message = vstrprintf(fmt, ap);
    va_end(ap);
    const std::string line =
        linePrefix() + "panic: " + message + "\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
    throwStatus(Status(StatusCode::Internal, std::move(message)));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

std::string
wallClockIso8601()
{
    using namespace std::chrono;
    const system_clock::time_point now = system_clock::now();
    const std::time_t secs = system_clock::to_time_t(now);
    const int millis = static_cast<int>(
        duration_cast<milliseconds>(now.time_since_epoch()).count() %
        1000);
    std::tm tmv{};
    gmtime_r(&secs, &tmv);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tmv);
    return strprintf("%s.%03dZ", buf, millis);
}

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace nnbaton

