#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <vector>

#include "common/status.hpp"

namespace nnbaton {

namespace {

std::atomic<int> currentLevel{static_cast<int>(LogLevel::Info)};

/**
 * Format prefix + message + newline into one buffer and emit it with
 * a single fwrite, so concurrent reporters never interleave mid-line
 * (stdio locks the stream per call).
 */
void
vreport(const char *prefix, const char *fmt, va_list ap)
{
    std::string line = prefix + vstrprintf(fmt, ap) + "\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
}

bool
levelEnabled(LogLevel level)
{
    return static_cast<int>(level) >=
           currentLevel.load(std::memory_order_relaxed);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    currentLevel.store(static_cast<int>(level),
                       std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        currentLevel.load(std::memory_order_relaxed));
}

bool
parseLogLevel(const std::string &name, LogLevel &out)
{
    if (name == "debug")
        out = LogLevel::Debug;
    else if (name == "info")
        out = LogLevel::Info;
    else if (name == "warn")
        out = LogLevel::Warn;
    else if (name == "quiet")
        out = LogLevel::Quiet;
    else
        return false;
    return true;
}

void
setInformEnabled(bool enabled)
{
    setLogLevel(enabled ? LogLevel::Info : LogLevel::Warn);
}

void
debugLog(const char *fmt, ...)
{
    if (!levelEnabled(LogLevel::Debug))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("debug: ", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!levelEnabled(LogLevel::Info))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info: ", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (!levelEnabled(LogLevel::Warn))
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn: ", fmt, ap);
    va_end(ap);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string message = vstrprintf(fmt, ap);
    va_end(ap);
    const std::string line = "panic: " + message + "\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
    throwStatus(Status(StatusCode::Internal, std::move(message)));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace nnbaton

