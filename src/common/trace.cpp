#include "common/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

#include "common/json.hpp"

namespace nnbaton {
namespace obs {

namespace {

std::atomic<bool> tracingOn{false};
std::atomic<int64_t> droppedEvents{0};

/**
 * A chunked append-only event buffer owned by one writer thread.
 *
 * The writer appends into the current chunk (no synchronisation) and
 * then publishes the new total with a release store of `count`;
 * readers take `chunksMutex` (so the chunk list is stable), load
 * `count` with acquire, and read exactly that many events.  The mutex
 * is only contended when the writer starts a new chunk, which happens
 * once per kChunkEvents spans.
 */
struct ThreadBuffer
{
    static constexpr size_t kChunkEvents = 4096;
    /** Per-thread cap; beyond it spans are counted as dropped. */
    static constexpr size_t kMaxEvents = size_t(1) << 20;

    const uint32_t tid;

    std::atomic<uint64_t> count{0};

    std::mutex chunksMutex; //!< guards `chunks` (the vector, not the
                            //!< events, which are write-once)
    std::vector<std::unique_ptr<TraceEvent[]>> chunks;

    // Writer-thread-only state.
    TraceEvent *current = nullptr;
    size_t currentUsed = kChunkEvents;

    explicit ThreadBuffer(uint32_t id) : tid(id) {}

    void
    append(const char *name, uint64_t startNs, uint64_t durNs)
    {
        const uint64_t n = count.load(std::memory_order_relaxed);
        if (n >= kMaxEvents) {
            droppedEvents.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        if (currentUsed == kChunkEvents) {
            auto chunk = std::make_unique<TraceEvent[]>(kChunkEvents);
            current = chunk.get();
            currentUsed = 0;
            std::lock_guard<std::mutex> lock(chunksMutex);
            chunks.push_back(std::move(chunk));
        }
        TraceEvent &e = current[currentUsed++];
        e.name = name;
        e.tid = tid;
        e.startNs = startNs;
        e.durNs = durNs;
        count.store(n + 1, std::memory_order_release);
    }
};

/** All thread buffers ever created; buffers outlive their threads. */
struct TraceRegistry
{
    std::mutex m;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    uint32_t nextTid = 1;

    static TraceRegistry &
    instance()
    {
        static TraceRegistry r;
        return r;
    }

    std::shared_ptr<ThreadBuffer>
    createBuffer()
    {
        std::lock_guard<std::mutex> lock(m);
        auto buf = std::make_shared<ThreadBuffer>(nextTid++);
        buffers.push_back(buf);
        return buf;
    }

    std::vector<std::shared_ptr<ThreadBuffer>>
    snapshotBuffers()
    {
        std::lock_guard<std::mutex> lock(m);
        return buffers;
    }
};

ThreadBuffer &
threadBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buf =
        TraceRegistry::instance().createBuffer();
    return *buf;
}

/** The span-name prefix before the first '.', as the Chrome "cat". */
std::string
categoryOf(const char *name)
{
    const std::string s(name);
    const size_t dot = s.find('.');
    return dot == std::string::npos ? s : s.substr(0, dot);
}

} // namespace

void
setTracingEnabled(bool enabled)
{
    tracingOn.store(enabled, std::memory_order_relaxed);
}

bool
tracingEnabled()
{
    return tracingOn.load(std::memory_order_relaxed);
}

uint64_t
traceNowNs()
{
    static const std::chrono::steady_clock::time_point origin =
        std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - origin)
            .count());
}

void
recordSpan(const char *name, uint64_t startNs, uint64_t endNs)
{
    threadBuffer().append(name, startNs,
                          endNs >= startNs ? endNs - startNs : 0);
}

std::vector<TraceEvent>
snapshotTrace()
{
    std::vector<TraceEvent> out;
    for (const auto &buf : TraceRegistry::instance().snapshotBuffers()) {
        std::lock_guard<std::mutex> lock(buf->chunksMutex);
        const uint64_t n = buf->count.load(std::memory_order_acquire);
        for (uint64_t i = 0; i < n; ++i) {
            out.push_back(
                buf->chunks[i / ThreadBuffer::kChunkEvents]
                           [i % ThreadBuffer::kChunkEvents]);
        }
    }
    return out;
}

int64_t
droppedTraceEvents()
{
    return droppedEvents.load(std::memory_order_relaxed);
}

void
writeChromeTrace(std::ostream &os)
{
    const std::vector<TraceEvent> events = snapshotTrace();
    JsonWriter j(os);
    j.beginObject();
    j.key("traceEvents").beginArray();

    // Process-name metadata record (Perfetto shows it as the track
    // group title).
    j.beginObject();
    j.field("ph", "M");
    j.field("pid", 0);
    j.field("tid", 0);
    j.field("name", "process_name");
    j.key("args").beginObject();
    j.field("name", "nn-baton");
    j.endObject();
    j.endObject();

    for (const TraceEvent &e : events) {
        j.beginObject();
        j.field("ph", "X");
        j.field("pid", 0);
        j.field("tid", static_cast<int64_t>(e.tid));
        j.field("name", e.name);
        j.field("cat", categoryOf(e.name));
        // Chrome timestamps are microseconds.
        j.field("ts", static_cast<double>(e.startNs) * 1e-3);
        j.field("dur", static_cast<double>(e.durNs) * 1e-3);
        j.endObject();
    }
    j.endArray();
    j.field("droppedEvents", droppedTraceEvents());
    j.endObject();
    os << "\n";
}

} // namespace obs
} // namespace nnbaton
