#include "common/trace.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#include <fcntl.h>
#include <unistd.h>

#include "common/json.hpp"

namespace nnbaton {
namespace obs {

namespace {

std::atomic<bool> tracingOn{false};
std::atomic<bool> flightOn{true};
std::atomic<int64_t> droppedEvents{0};

std::atomic<uint64_t> ridCounter{0};
thread_local uint64_t currentRid = 0;

/**
 * One flight-ring slot.  Every field is its own relaxed atomic so the
 * ring stays data-race-free under TSan while the writer overwrites
 * wrapped slots: a concurrent reader may see a slot mixing two events
 * (documented in the header), but never a torn field — names are
 * pointers to string literals, so the pointer load is always valid.
 */
struct FlightSlot
{
    std::atomic<const char *> name{nullptr};
    std::atomic<uint64_t> startNs{0};
    std::atomic<uint64_t> durNs{0};
    std::atomic<uint64_t> rid{0};
};

/**
 * A chunked append-only event buffer owned by one writer thread.
 *
 * The writer appends into the current chunk (no synchronisation) and
 * then publishes the new total with a release store of `count`;
 * readers take `chunksMutex` (so the chunk list is stable), load
 * `count` with acquire, and read exactly that many events.  The mutex
 * is only contended when the writer starts a new chunk, which happens
 * once per kChunkEvents spans.
 */
struct ThreadBuffer
{
    static constexpr size_t kChunkEvents = 4096;
    /** Per-thread cap; beyond it spans are counted as dropped. */
    static constexpr size_t kMaxEvents = size_t(1) << 20;
    /** Flight-ring capacity (power of two; newest events win). */
    static constexpr size_t kFlightEvents = 512;

    const uint32_t tid;

    std::atomic<uint64_t> count{0};

    std::mutex chunksMutex; //!< guards `chunks` (the vector, not the
                            //!< events, which are write-once)
    std::vector<std::unique_ptr<TraceEvent[]>> chunks;

    // Writer-thread-only state.
    TraceEvent *current = nullptr;
    size_t currentUsed = kChunkEvents;

    // The flight ring: always-on, fixed-size, oldest slots
    // overwritten.  Readable from a signal handler (atomic fields, no
    // locks) and from the JSON exporter.
    std::array<FlightSlot, kFlightEvents> flight;
    std::atomic<uint64_t> flightCount{0};

    /** Intrusive lock-free list link for the signal-safe walker;
     *  buffers are registry-owned and never freed, so raw pointers
     *  stay valid for the life of the process. */
    ThreadBuffer *flightNextBuffer = nullptr;

    explicit ThreadBuffer(uint32_t id) : tid(id) {}

    void
    append(const char *name, uint64_t startNs, uint64_t durNs,
           uint64_t rid)
    {
        const uint64_t n = count.load(std::memory_order_relaxed);
        if (n >= kMaxEvents) {
            droppedEvents.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        if (currentUsed == kChunkEvents) {
            auto chunk = std::make_unique<TraceEvent[]>(kChunkEvents);
            current = chunk.get();
            currentUsed = 0;
            std::lock_guard<std::mutex> lock(chunksMutex);
            chunks.push_back(std::move(chunk));
        }
        TraceEvent &e = current[currentUsed++];
        e.name = name;
        e.tid = tid;
        e.startNs = startNs;
        e.durNs = durNs;
        e.rid = rid;
        count.store(n + 1, std::memory_order_release);
    }

    void
    appendFlight(const char *name, uint64_t startNs, uint64_t durNs,
                 uint64_t rid)
    {
        const uint64_t n = flightCount.load(std::memory_order_relaxed);
        FlightSlot &s = flight[n % kFlightEvents];
        s.name.store(name, std::memory_order_relaxed);
        s.startNs.store(startNs, std::memory_order_relaxed);
        s.durNs.store(durNs, std::memory_order_relaxed);
        s.rid.store(rid, std::memory_order_relaxed);
        // Release-publish so a (non-signal) reader that acquires the
        // count sees every field of the slots before it.
        flightCount.store(n + 1, std::memory_order_release);
    }
};

/** Head of the lock-free buffer list the signal handler walks. */
std::atomic<ThreadBuffer *> flightListHead{nullptr};

/** All thread buffers ever created; buffers outlive their threads. */
struct TraceRegistry
{
    std::mutex m;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    uint32_t nextTid = 1;

    static TraceRegistry &
    instance()
    {
        static TraceRegistry r;
        return r;
    }

    std::shared_ptr<ThreadBuffer>
    createBuffer()
    {
        std::lock_guard<std::mutex> lock(m);
        auto buf = std::make_shared<ThreadBuffer>(nextTid++);
        buffers.push_back(buf);
        // Publish onto the signal handler's lock-free list (push-only;
        // entries live as long as the registry).
        ThreadBuffer *raw = buf.get();
        raw->flightNextBuffer =
            flightListHead.load(std::memory_order_relaxed);
        while (!flightListHead.compare_exchange_weak(
            raw->flightNextBuffer, raw, std::memory_order_release,
            std::memory_order_relaxed)) {
        }
        return buf;
    }

    std::vector<std::shared_ptr<ThreadBuffer>>
    snapshotBuffers()
    {
        std::lock_guard<std::mutex> lock(m);
        return buffers;
    }
};

ThreadBuffer &
threadBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buf =
        TraceRegistry::instance().createBuffer();
    return *buf;
}

/** The span-name prefix before the first '.', as the Chrome "cat". */
std::string
categoryOf(const char *name)
{
    const std::string s(name);
    const size_t dot = s.find('.');
    return dot == std::string::npos ? s : s.substr(0, dot);
}

} // namespace

void
setTracingEnabled(bool enabled)
{
    tracingOn.store(enabled, std::memory_order_relaxed);
}

bool
tracingEnabled()
{
    return tracingOn.load(std::memory_order_relaxed);
}

uint64_t
traceNowNs()
{
    static const std::chrono::steady_clock::time_point origin =
        std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - origin)
            .count());
}

void
recordSpan(const char *name, uint64_t startNs, uint64_t endNs)
{
    const uint64_t durNs = endNs >= startNs ? endNs - startNs : 0;
    const uint64_t rid = currentRid;
    ThreadBuffer &buf = threadBuffer();
    if (tracingEnabled())
        buf.append(name, startNs, durNs, rid);
    if (flightRecorderEnabled())
        buf.appendFlight(name, startNs, durNs, rid);
}

std::vector<TraceEvent>
snapshotTrace()
{
    std::vector<TraceEvent> out;
    for (const auto &buf : TraceRegistry::instance().snapshotBuffers()) {
        std::lock_guard<std::mutex> lock(buf->chunksMutex);
        const uint64_t n = buf->count.load(std::memory_order_acquire);
        for (uint64_t i = 0; i < n; ++i) {
            out.push_back(
                buf->chunks[i / ThreadBuffer::kChunkEvents]
                           [i % ThreadBuffer::kChunkEvents]);
        }
    }
    return out;
}

int64_t
droppedTraceEvents()
{
    return droppedEvents.load(std::memory_order_relaxed);
}

uint64_t
nextRequestId()
{
    return ridCounter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void
setCurrentRequestId(uint64_t rid)
{
    currentRid = rid;
}

uint64_t
currentRequestId()
{
    return currentRid;
}

uint32_t
currentThreadTag()
{
    return threadBuffer().tid;
}

void
setFlightRecorderEnabled(bool enabled)
{
    flightOn.store(enabled, std::memory_order_relaxed);
}

bool
flightRecorderEnabled()
{
    return flightOn.load(std::memory_order_relaxed);
}

size_t
flightRingCapacity()
{
    return ThreadBuffer::kFlightEvents;
}

void
flightMark(const char *name)
{
    if (!flightRecorderEnabled())
        return;
    threadBuffer().appendFlight(name, traceNowNs(), 0, currentRid);
}

void
writeFlightRecorderJson(JsonWriter &j, size_t maxEventsPerThread)
{
    bool truncated = false;
    j.beginObject();
    j.field("capacity",
            static_cast<int64_t>(ThreadBuffer::kFlightEvents));
    j.key("threads").beginArray();
    for (const auto &buf :
         TraceRegistry::instance().snapshotBuffers()) {
        const uint64_t n =
            buf->flightCount.load(std::memory_order_acquire);
        if (!n)
            continue;
        // Oldest retained event first.  Slots older than capacity have
        // been overwritten; an explicit per-thread cap keeps only the
        // newest maxEventsPerThread.
        uint64_t keep = std::min<uint64_t>(
            n, ThreadBuffer::kFlightEvents);
        if (n > ThreadBuffer::kFlightEvents)
            truncated = true;
        if (maxEventsPerThread && keep > maxEventsPerThread) {
            keep = maxEventsPerThread;
            truncated = true;
        }
        j.beginObject();
        j.field("tid", static_cast<int64_t>(buf->tid));
        j.key("events").beginArray();
        for (uint64_t i = n - keep; i < n; ++i) {
            const FlightSlot &s =
                buf->flight[i % ThreadBuffer::kFlightEvents];
            const char *name =
                s.name.load(std::memory_order_relaxed);
            if (!name)
                continue;
            j.beginObject();
            j.field("name", name);
            j.field("rid", static_cast<int64_t>(
                               s.rid.load(std::memory_order_relaxed)));
            j.field("startNs",
                    static_cast<int64_t>(s.startNs.load(
                        std::memory_order_relaxed)));
            j.field("durNs",
                    static_cast<int64_t>(
                        s.durNs.load(std::memory_order_relaxed)));
            j.endObject();
        }
        j.endArray();
        j.endObject();
    }
    j.endArray();
    j.field("truncated", truncated);
    j.endObject();
}

void
writeFlightRecorder(std::ostream &os, size_t maxEventsPerThread)
{
    JsonWriter j(os);
    j.beginObject();
    j.key("flightRecorder");
    writeFlightRecorderJson(j, maxEventsPerThread);
    j.endObject();
    os << "\n";
}

namespace {

/**
 * A tiny async-signal-safe writer: fixed stack buffer, write(2) on
 * flush, hand-rolled integer formatting.  No locks, no allocation, no
 * stdio — everything a signal handler is allowed to do.
 */
struct FdWriter
{
    int fd;
    char buf[512];
    size_t len = 0;

    explicit FdWriter(int f) : fd(f) {}

    void
    flush()
    {
        size_t off = 0;
        while (off < len) {
            const ssize_t n = ::write(fd, buf + off, len - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                break; // nothing safe to do; drop the rest
            }
            off += static_cast<size_t>(n);
        }
        len = 0;
    }

    void
    put(char c)
    {
        if (len == sizeof(buf))
            flush();
        buf[len++] = c;
    }

    void
    str(const char *s)
    {
        for (; *s; ++s)
            put(*s);
    }

    /** A JSON string from a span-name literal; control characters,
     *  quotes and backslashes become '_' (names never contain them). */
    void
    jsonStr(const char *s)
    {
        put('"');
        for (; *s; ++s) {
            const unsigned char c = static_cast<unsigned char>(*s);
            put(c < 0x20 || c == '"' || c == '\\' ? '_'
                                                  : static_cast<char>(c));
        }
        put('"');
    }

    void
    u64(uint64_t v)
    {
        char digits[20];
        int n = 0;
        do {
            digits[n++] = static_cast<char>('0' + v % 10);
            v /= 10;
        } while (v);
        while (n)
            put(digits[--n]);
    }
};

} // namespace

void
writeFlightRecorderToFd(int fd)
{
    FdWriter w(fd);
    w.str("{\"flightRecorder\":{\"capacity\":");
    w.u64(ThreadBuffer::kFlightEvents);
    w.str(",\"signalSafe\":true,\"threads\":[");
    bool firstThread = true;
    for (ThreadBuffer *buf =
             flightListHead.load(std::memory_order_acquire);
         buf; buf = buf->flightNextBuffer) {
        const uint64_t n =
            buf->flightCount.load(std::memory_order_acquire);
        if (!n)
            continue;
        if (!firstThread)
            w.put(',');
        firstThread = false;
        w.str("{\"tid\":");
        w.u64(buf->tid);
        w.str(",\"events\":[");
        const uint64_t keep =
            std::min<uint64_t>(n, ThreadBuffer::kFlightEvents);
        bool firstEvent = true;
        for (uint64_t i = n - keep; i < n; ++i) {
            const FlightSlot &s =
                buf->flight[i % ThreadBuffer::kFlightEvents];
            const char *name = s.name.load(std::memory_order_relaxed);
            if (!name)
                continue;
            if (!firstEvent)
                w.put(',');
            firstEvent = false;
            w.str("{\"name\":");
            w.jsonStr(name);
            w.str(",\"rid\":");
            w.u64(s.rid.load(std::memory_order_relaxed));
            w.str(",\"startNs\":");
            w.u64(s.startNs.load(std::memory_order_relaxed));
            w.str(",\"durNs\":");
            w.u64(s.durNs.load(std::memory_order_relaxed));
            w.put('}');
        }
        w.str("]}");
    }
    w.str("]}}\n");
    w.flush();
}

namespace {

char flightDumpPath[512] = {0};
std::atomic<bool> flightHandlerInstalled{false};

extern "C" void
flightFatalHandler(int sig)
{
    // Everything below is async-signal-safe: open/write/close and the
    // lock-free FdWriter walk.
    int fd = 2;
    if (flightDumpPath[0]) {
        const int f = ::open(flightDumpPath,
                             O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (f >= 0)
            fd = f;
    }
    {
        FdWriter note(2);
        note.str("nn-baton: fatal signal ");
        note.u64(static_cast<uint64_t>(sig));
        note.str(", dumping flight recorder\n");
        note.flush();
    }
    writeFlightRecorderToFd(fd);
    if (fd != 2)
        ::close(fd);
    // SA_RESETHAND restored the default disposition on entry, so
    // re-raising terminates the process with the original signal.
    ::raise(sig);
}

} // namespace

void
installFlightSignalHandler(const char *path)
{
    if (path && *path) {
        std::strncpy(flightDumpPath, path,
                     sizeof(flightDumpPath) - 1);
        flightDumpPath[sizeof(flightDumpPath) - 1] = '\0';
    } else {
        flightDumpPath[0] = '\0';
    }
    if (flightHandlerInstalled.exchange(true))
        return; // path updated above; handlers already in place
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = flightFatalHandler;
    sa.sa_flags = SA_RESETHAND;
    sigemptyset(&sa.sa_mask);
    for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT})
        ::sigaction(sig, &sa, nullptr);
}

void
writeChromeTrace(std::ostream &os)
{
    const std::vector<TraceEvent> events = snapshotTrace();
    JsonWriter j(os);
    j.beginObject();
    j.key("traceEvents").beginArray();

    // Process-name metadata record (Perfetto shows it as the track
    // group title).
    j.beginObject();
    j.field("ph", "M");
    j.field("pid", 0);
    j.field("tid", 0);
    j.field("name", "process_name");
    j.key("args").beginObject();
    j.field("name", "nn-baton");
    j.endObject();
    j.endObject();

    for (const TraceEvent &e : events) {
        j.beginObject();
        j.field("ph", "X");
        j.field("pid", 0);
        j.field("tid", static_cast<int64_t>(e.tid));
        j.field("name", e.name);
        j.field("cat", categoryOf(e.name));
        // Chrome timestamps are microseconds.
        j.field("ts", static_cast<double>(e.startNs) * 1e-3);
        j.field("dur", static_cast<double>(e.durNs) * 1e-3);
        if (e.rid) {
            j.key("args").beginObject();
            j.field("rid", static_cast<int64_t>(e.rid));
            j.endObject();
        }
        j.endObject();
    }
    j.endArray();
    j.field("droppedEvents", droppedTraceEvents());
    j.endObject();
    os << "\n";
}

} // namespace obs
} // namespace nnbaton
