#include "common/backoff.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/cancel.hpp"

namespace nnbaton {

Backoff::Backoff(const BackoffPolicy &policy, uint64_t seed)
    : policy_(policy), state_(seed ? seed : 0x9e3779b97f4a7c15ull)
{
}

uint64_t
Backoff::nextRandom()
{
    // xorshift64*: deterministic, no global state, good enough to
    // spread retry storms.
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
}

int64_t
Backoff::nextDelayMs()
{
    const double grown =
        static_cast<double>(policy_.initialDelayMs) *
        std::pow(policy_.multiplier, static_cast<double>(attempts_));
    ++attempts_;
    const double base =
        std::min(grown, static_cast<double>(policy_.maxDelayMs));
    double jitter = 0.0;
    if (policy_.jitter > 0) {
        // Uniform in [-jitter, +jitter] from the seeded stream.
        const double unit =
            static_cast<double>(nextRandom() >> 11) /
            static_cast<double>(1ull << 53);
        jitter = base * policy_.jitter * (2.0 * unit - 1.0);
    }
    const double delay = std::max(1.0, base + jitter);
    return static_cast<int64_t>(delay);
}

bool
sleepWithCancel(int64_t delayMs, const CancelToken *cancel)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(delayMs);
    while (std::chrono::steady_clock::now() < deadline) {
        if (cancel && cancel->cancelled())
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<int64_t>(delayMs, 5)));
    }
    return cancel == nullptr || !cancel->cancelled();
}

} // namespace nnbaton
