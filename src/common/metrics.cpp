#include "common/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"

namespace nnbaton {
namespace obs {

int
Histogram::bucketIndex(int64_t v)
{
    if (v <= 0)
        return 0;
    // bit_width(v) = floor(log2(v)) + 1, so 1 -> 1, 2..3 -> 2, etc.
    const int b = std::bit_width(static_cast<uint64_t>(v));
    return b < kBuckets ? b : kBuckets - 1;
}

int64_t
Histogram::bucketLowerBound(int b)
{
    if (b <= 0)
        return 0;
    return int64_t(1) << (b - 1);
}

int64_t
Histogram::bucketUpperBound(int b)
{
    if (b <= 0)
        return 0;
    if (b >= kBuckets - 1)
        return std::numeric_limits<int64_t>::max();
    return (int64_t(1) << b) - 1;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(kInt64Max, std::memory_order_relaxed);
    max_.store(kInt64Min, std::memory_order_relaxed);
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count <= 0)
        return 0.0;
    if (q <= 0.0)
        return static_cast<double>(minValue);
    if (q >= 1.0)
        return static_cast<double>(maxValue);
    // The continuous rank in (0, count]; the containing bucket is the
    // first one whose cumulative count reaches it.
    const double rank = q * static_cast<double>(count);
    int64_t cumulative = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
        const int64_t n = buckets[b];
        if (!n)
            continue;
        if (static_cast<double>(cumulative + n) >= rank) {
            // Clamp the bucket bounds into [minValue, maxValue]: the
            // last bucket's nominal upper bound is INT64_MAX, and a
            // bucket holding only the min (or max) collapses to the
            // exact value.  Both bounds need both clamps — bucket 0's
            // nominal range is [0, 0], so for all-negative recordings
            // max-only/min-only clamping would leave lo or hi at 0 and
            // interpolate outside the observed range entirely.
            const double lo = static_cast<double>(std::min(
                std::max(Histogram::bucketLowerBound(b), minValue),
                maxValue));
            const double hi = static_cast<double>(std::max(
                std::min(Histogram::bucketUpperBound(b), maxValue),
                minValue));
            const double frac =
                (rank - static_cast<double>(cumulative)) /
                static_cast<double>(n);
            return lo + frac * (hi - lo);
        }
        cumulative += n;
    }
    return static_cast<double>(maxValue);
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry r;
    return r;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(m_);
    std::unique_ptr<Counter> &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(m_);
    std::unique_ptr<Gauge> &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(m_);
    std::unique_ptr<Histogram> &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(m_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot s;
    std::lock_guard<std::mutex> lock(m_);
    for (const auto &[name, c] : counters_)
        s.counters.emplace_back(name, c->value());
    for (const auto &[name, g] : gauges_)
        s.gauges.emplace_back(name, g->value());
    for (const auto &[name, h] : histograms_) {
        HistogramSnapshot hs;
        hs.name = name;
        hs.count = h->count();
        hs.sum = h->sum();
        hs.minValue = h->minValue();
        hs.maxValue = h->maxValue();
        for (int b = 0; b < Histogram::kBuckets; ++b)
            hs.buckets[b] = h->bucketCount(b);
        s.histograms.push_back(std::move(hs));
    }
    return s;
}

std::string
formatMetrics(const MetricsSnapshot &snapshot)
{
    std::ostringstream ss;
    TextTable t({"metric", "kind", "value", "detail"});
    for (const auto &[name, v] : snapshot.counters)
        t.newRow().add(name).add("counter").add(v).add("");
    for (const auto &[name, v] : snapshot.gauges)
        t.newRow().add(name).add("gauge").add(v, 3).add("");
    for (const HistogramSnapshot &h : snapshot.histograms) {
        t.newRow()
            .add(h.name)
            .add("histogram")
            .add(h.count)
            .add(strprintf(
                "sum %lld mean %.1f min %lld max %lld p50 %.1f "
                "p90 %.1f p99 %.1f",
                static_cast<long long>(h.sum), h.mean(),
                static_cast<long long>(h.minValue),
                static_cast<long long>(h.maxValue), h.quantile(0.50),
                h.quantile(0.90), h.quantile(0.99)));
    }
    t.print(ss);
    return ss.str();
}

void
writeMetricsJson(JsonWriter &j, const MetricsSnapshot &snapshot)
{
    j.beginObject();
    j.key("counters").beginObject();
    for (const auto &[name, v] : snapshot.counters)
        j.field(name, v);
    j.endObject();
    j.key("gauges").beginObject();
    for (const auto &[name, v] : snapshot.gauges)
        j.field(name, v);
    j.endObject();
    j.key("histograms").beginObject();
    for (const HistogramSnapshot &h : snapshot.histograms) {
        j.key(h.name).beginObject();
        j.field("count", h.count);
        j.field("sum", h.sum);
        j.field("mean", h.mean());
        j.field("min", h.minValue);
        j.field("max", h.maxValue);
        j.field("p50", h.quantile(0.50));
        j.field("p90", h.quantile(0.90));
        j.field("p99", h.quantile(0.99));
        j.key("buckets").beginArray();
        for (int b = 0; b < Histogram::kBuckets; ++b) {
            if (!h.buckets[b])
                continue;
            j.beginObject();
            j.field("lo", Histogram::bucketLowerBound(b));
            j.field("hi", Histogram::bucketUpperBound(b));
            j.field("n", h.buckets[b]);
            j.endObject();
        }
        j.endArray();
        j.endObject();
    }
    j.endObject();
    j.endObject();
}

namespace {

/** "serve.request_us" -> "nnbaton_serve_request_us". */
std::string
promName(const std::string &name)
{
    std::string out = "nnbaton_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

} // namespace

void
writePrometheus(std::ostream &os, const MetricsSnapshot &snapshot)
{
    for (const auto &[name, v] : snapshot.counters) {
        const std::string n = promName(name) + "_total";
        os << "# TYPE " << n << " counter\n";
        os << n << " " << v << "\n";
    }
    for (const auto &[name, v] : snapshot.gauges) {
        const std::string n = promName(name);
        os << "# TYPE " << n << " gauge\n";
        os << n << " " << strprintf("%.9g", v) << "\n";
    }
    for (const HistogramSnapshot &h : snapshot.histograms) {
        const std::string n = promName(h.name);
        os << "# TYPE " << n << " histogram\n";
        int64_t cumulative = 0;
        for (int b = 0; b < Histogram::kBuckets; ++b) {
            if (!h.buckets[b])
                continue;
            cumulative += h.buckets[b];
            os << n << "_bucket{le=\""
               << Histogram::bucketUpperBound(b) << "\"} "
               << cumulative << "\n";
        }
        os << n << "_bucket{le=\"+Inf\"} " << h.count << "\n";
        os << n << "_sum " << h.sum << "\n";
        os << n << "_count " << h.count << "\n";
        // Precomputed quantiles as gauges: histogram_quantile() can
        // derive them from the buckets, but exporting them makes a
        // bare scrape (or a curl) immediately SLO-readable.
        for (const auto &[suffix, q] :
             {std::pair<const char *, double>{"_p50", 0.50},
              {"_p90", 0.90},
              {"_p99", 0.99}}) {
            const std::string qn = n + suffix;
            os << "# TYPE " << qn << " gauge\n";
            os << qn << " " << strprintf("%.9g", h.quantile(q))
               << "\n";
        }
    }
}

namespace {

StatusOr<int64_t>
jsonInt(const char *what, const JsonValue &v)
{
    if (!v.isNumber() || v.number != std::floor(v.number)) {
        return errInvalidArgument("metrics json: %s must be an integer",
                                  what);
    }
    return static_cast<int64_t>(v.number);
}

} // namespace

StatusOr<MetricsSnapshot>
metricsSnapshotFromJson(const JsonValue &root)
{
    if (!root.isObject())
        return errInvalidArgument("metrics json: not an object");
    const JsonValue *counters = root.find("counters");
    const JsonValue *gauges = root.find("gauges");
    const JsonValue *histograms = root.find("histograms");
    if (!counters || !counters->isObject() || !gauges ||
        !gauges->isObject() || !histograms || !histograms->isObject()) {
        return errInvalidArgument(
            "metrics json: needs counters/gauges/histograms objects");
    }

    MetricsSnapshot s;
    for (const auto &[name, v] : counters->object) {
        StatusOr<int64_t> n = jsonInt(name.c_str(), v);
        if (!n.ok())
            return n.status();
        s.counters.emplace_back(name, n.value());
    }
    for (const auto &[name, v] : gauges->object) {
        if (!v.isNumber()) {
            return errInvalidArgument(
                "metrics json: gauge %s must be a number", name.c_str());
        }
        s.gauges.emplace_back(name, v.number);
    }
    for (const auto &[name, v] : histograms->object) {
        if (!v.isObject()) {
            return errInvalidArgument(
                "metrics json: histogram %s must be an object",
                name.c_str());
        }
        HistogramSnapshot hs;
        hs.name = name;
        for (const auto &[what, member] :
             {std::pair<const char *, int64_t *>{"count", &hs.count},
              {"sum", &hs.sum},
              {"min", &hs.minValue},
              {"max", &hs.maxValue}}) {
            const JsonValue *m = v.find(what);
            if (!m) {
                return errInvalidArgument(
                    "metrics json: histogram %s misses '%s'",
                    name.c_str(), what);
            }
            StatusOr<int64_t> n = jsonInt(what, *m);
            if (!n.ok())
                return n.status();
            *member = n.value();
        }
        const JsonValue *buckets = v.find("buckets");
        if (!buckets || !buckets->isArray()) {
            return errInvalidArgument(
                "metrics json: histogram %s misses 'buckets'",
                name.c_str());
        }
        for (const JsonValue &b : buckets->array) {
            const JsonValue *lo = b.find("lo");
            const JsonValue *n = b.find("n");
            if (!b.isObject() || !lo || !n) {
                return errInvalidArgument(
                    "metrics json: histogram %s has a malformed bucket",
                    name.c_str());
            }
            StatusOr<int64_t> loV = jsonInt("lo", *lo);
            StatusOr<int64_t> nV = jsonInt("n", *n);
            if (!loV.ok())
                return loV.status();
            if (!nV.ok())
                return nV.status();
            // A bucket is identified by its lower bound; indices
            // reconstruct exactly because lower bounds are unique.
            hs.buckets[Histogram::bucketIndex(loV.value())] = nV.value();
        }
        s.histograms.push_back(std::move(hs));
    }
    return s;
}

} // namespace obs
} // namespace nnbaton
