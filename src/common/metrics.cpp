#include "common/metrics.hpp"

#include <bit>
#include <limits>
#include <sstream>

#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"

namespace nnbaton {
namespace obs {

int
Histogram::bucketIndex(int64_t v)
{
    if (v <= 0)
        return 0;
    // bit_width(v) = floor(log2(v)) + 1, so 1 -> 1, 2..3 -> 2, etc.
    const int b = std::bit_width(static_cast<uint64_t>(v));
    return b < kBuckets ? b : kBuckets - 1;
}

int64_t
Histogram::bucketLowerBound(int b)
{
    if (b <= 0)
        return 0;
    return int64_t(1) << (b - 1);
}

int64_t
Histogram::bucketUpperBound(int b)
{
    if (b <= 0)
        return 0;
    if (b >= kBuckets - 1)
        return std::numeric_limits<int64_t>::max();
    return (int64_t(1) << b) - 1;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry r;
    return r;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(m_);
    std::unique_ptr<Counter> &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(m_);
    std::unique_ptr<Gauge> &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(m_);
    std::unique_ptr<Histogram> &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(m_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot s;
    std::lock_guard<std::mutex> lock(m_);
    for (const auto &[name, c] : counters_)
        s.counters.emplace_back(name, c->value());
    for (const auto &[name, g] : gauges_)
        s.gauges.emplace_back(name, g->value());
    for (const auto &[name, h] : histograms_) {
        HistogramSnapshot hs;
        hs.name = name;
        hs.count = h->count();
        hs.sum = h->sum();
        for (int b = 0; b < Histogram::kBuckets; ++b)
            hs.buckets[b] = h->bucketCount(b);
        s.histograms.push_back(std::move(hs));
    }
    return s;
}

std::string
formatMetrics(const MetricsSnapshot &snapshot)
{
    std::ostringstream ss;
    TextTable t({"metric", "kind", "value", "detail"});
    for (const auto &[name, v] : snapshot.counters)
        t.newRow().add(name).add("counter").add(v).add("");
    for (const auto &[name, v] : snapshot.gauges)
        t.newRow().add(name).add("gauge").add(v, 3).add("");
    for (const HistogramSnapshot &h : snapshot.histograms) {
        t.newRow()
            .add(h.name)
            .add("histogram")
            .add(h.count)
            .add(strprintf("sum %lld mean %.1f",
                           static_cast<long long>(h.sum), h.mean()));
    }
    t.print(ss);
    return ss.str();
}

void
writeMetricsJson(JsonWriter &j, const MetricsSnapshot &snapshot)
{
    j.beginObject();
    j.key("counters").beginObject();
    for (const auto &[name, v] : snapshot.counters)
        j.field(name, v);
    j.endObject();
    j.key("gauges").beginObject();
    for (const auto &[name, v] : snapshot.gauges)
        j.field(name, v);
    j.endObject();
    j.key("histograms").beginObject();
    for (const HistogramSnapshot &h : snapshot.histograms) {
        j.key(h.name).beginObject();
        j.field("count", h.count);
        j.field("sum", h.sum);
        j.field("mean", h.mean());
        j.key("buckets").beginArray();
        for (int b = 0; b < Histogram::kBuckets; ++b) {
            if (!h.buckets[b])
                continue;
            j.beginObject();
            j.field("lo", Histogram::bucketLowerBound(b));
            j.field("hi", Histogram::bucketUpperBound(b));
            j.field("n", h.buckets[b]);
            j.endObject();
        }
        j.endArray();
        j.endObject();
    }
    j.endObject();
    j.endObject();
}

} // namespace obs
} // namespace nnbaton
