#include "common/parallel.hpp"

#include <algorithm>

namespace nnbaton {

namespace {

/** Set while a thread executes a parallelFor body (caller or worker). */
thread_local bool t_in_parallel = false;

struct RegionGuard
{
    // Save/restore rather than set/clear: an inline nested region
    // must not clear the outer region's flag when it ends.
    bool prev;
    RegionGuard() : prev(t_in_parallel) { t_in_parallel = true; }
    ~RegionGuard() { t_in_parallel = prev; }
};

} // namespace

int
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

bool
ThreadPool::inParallelRegion()
{
    return t_in_parallel;
}

ThreadPool::ThreadPool(int threads)
{
    const int workers = std::max(0, threads - 1);
    workers_.reserve(workers);
    for (int i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::runIndices(const std::function<void(int64_t)> &fn)
{
    RegionGuard guard;
    for (;;) {
        const int64_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n_)
            return;
        try {
            fn(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(m_);
            if (!error_)
                error_ = std::current_exception();
            // Abandon the remaining indices: no later claim can win.
            next_.store(n_, std::memory_order_relaxed);
            return;
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        const std::function<void(int64_t)> *fn = nullptr;
        {
            std::unique_lock<std::mutex> lock(m_);
            wake_.wait(lock,
                       [&] { return stop_ || jobId_ != seen; });
            if (stop_)
                return;
            seen = jobId_;
            fn = fn_;
        }
        runIndices(*fn);
        {
            std::lock_guard<std::mutex> lock(m_);
            if (--active_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(int64_t n,
                        const std::function<void(int64_t)> &fn)
{
    if (n <= 0)
        return;
    // Serial paths: no workers, trivial range, or nested call from a
    // worker (running inline keeps thread counts from multiplying).
    if (workers_.empty() || n == 1 || t_in_parallel) {
        RegionGuard guard;
        for (int64_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(m_);
        fn_ = &fn;
        n_ = n;
        next_.store(0, std::memory_order_relaxed);
        error_ = nullptr;
        active_ = static_cast<int>(workers_.size());
        ++jobId_;
    }
    wake_.notify_all();

    runIndices(fn);

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(m_);
        done_.wait(lock, [&] { return active_ == 0; });
        fn_ = nullptr;
        error = error_;
        error_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace nnbaton
