/**
 * @file
 * Small socket utilities shared by every networked caller: the serve
 * daemon's clients (`nn-baton request` / `stats`), and the fabric
 * coordinator's worker connections.
 *
 * Two endpoint families, one string syntax:
 *
 *  - "host:port" (or ":port" for localhost) — TCP.  The fabric uses
 *    TCP so a sweep can shard across machines.
 *  - anything else — a filesystem path to a Unix-domain socket.
 *
 * Connections and line I/O are Status-based and timeout-bounded: a
 * peer that hangs mid-frame turns into errDeadlineExceeded at the
 * caller instead of wedging a thread forever, which is what lets the
 * coordinator's lease machinery treat a stalled worker exactly like a
 * crashed one.
 */

#ifndef NNBATON_COMMON_NET_HPP
#define NNBATON_COMMON_NET_HPP

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace nnbaton {

/** A parsed endpoint: either a TCP host/port or a Unix socket path. */
struct Endpoint
{
    bool tcp = false;
    std::string host;     //!< TCP only; defaults to 127.0.0.1
    int port = 0;         //!< TCP only
    std::string unixPath; //!< Unix only

    /** Canonical display form ("127.0.0.1:7070" or the path). */
    std::string toString() const;
};

/**
 * Parse "host:port", ":port" (localhost) or a Unix socket path.
 * Rejects empty strings and out-of-range ports.
 */
StatusOr<Endpoint> parseEndpoint(const std::string &text);

/**
 * Connect to @p endpoint with a wall-clock timeout (non-blocking
 * connect + poll).  Returns the connected fd; the fd is left in
 * blocking mode.  errUnavailable on refusal/resolution failure,
 * errDeadlineExceeded on timeout.
 */
StatusOr<int> connectEndpoint(const Endpoint &endpoint,
                              double timeoutSeconds);

/**
 * A buffered newline-delimited line channel over a connected socket.
 * Owns the fd.  All operations are bounded by per-call timeouts, so
 * a dead or stalled peer always surfaces as a Status instead of a
 * hang.
 */
class LineChannel
{
  public:
    LineChannel() = default;
    /** Takes ownership of a connected @p fd. */
    explicit LineChannel(int fd) : fd_(fd) {}
    ~LineChannel() { close(); }

    LineChannel(const LineChannel &) = delete;
    LineChannel &operator=(const LineChannel &) = delete;
    LineChannel(LineChannel &&other) noexcept { swap(other); }
    LineChannel &operator=(LineChannel &&other) noexcept
    {
        close();
        swap(other);
        return *this;
    }

    bool connected() const { return fd_ >= 0; }

    /** Close the socket (idempotent); pending buffer is dropped. */
    void close();

    /**
     * Send @p line plus a trailing newline, tolerating short writes.
     * errUnavailable on a socket error (peer hung up),
     * errDeadlineExceeded when @p timeoutSeconds elapses first.
     */
    Status sendLine(const std::string &line, double timeoutSeconds);

    /**
     * Receive one newline-terminated line (without the newline).
     * errUnavailable when the peer closes mid-line,
     * errDeadlineExceeded when @p timeoutSeconds elapses first.
     */
    StatusOr<std::string> recvLine(double timeoutSeconds);

  private:
    void swap(LineChannel &other) noexcept
    {
        std::swap(fd_, other.fd_);
        std::swap(buffer_, other.buffer_);
    }

    int fd_ = -1;
    std::string buffer_;
};

/** parseEndpoint + connectEndpoint + LineChannel in one call. */
StatusOr<LineChannel> connectLineChannel(const std::string &endpoint,
                                         double timeoutSeconds);

} // namespace nnbaton

#endif // NNBATON_COMMON_NET_HPP
