#include "common/parse.hpp"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

namespace nnbaton {

StatusOr<int64_t>
parsePositiveInt64(const char *opt, const char *text)
{
    // strtoll would skip leading whitespace; the whole token rule
    // forbids it.
    if (std::isspace(static_cast<unsigned char>(text[0]))) {
        return errInvalidArgument(
            "%s needs a positive integer, got '%s'", opt, text);
    }
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0' || v <= 0) {
        return errInvalidArgument(
            "%s needs a positive integer, got '%s'", opt, text);
    }
    return static_cast<int64_t>(v);
}

StatusOr<int>
parsePositiveInt(const char *opt, const char *text)
{
    StatusOr<int64_t> v = parsePositiveInt64(opt, text);
    if (!v.ok())
        return v.status();
    if (v.value() > INT_MAX)
        return errInvalidArgument("%s value '%s' is out of range", opt,
                                  text);
    return static_cast<int>(v.value());
}

StatusOr<double>
parsePositiveDouble(const char *opt, const char *text)
{
    if (std::isspace(static_cast<unsigned char>(text[0]))) {
        return errInvalidArgument("%s needs a positive number, got '%s'",
                                  opt, text);
    }
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (errno != 0 || end == text || *end != '\0' ||
        !std::isfinite(v) || !(v > 0.0)) {
        return errInvalidArgument("%s needs a positive number, got '%s'",
                                  opt, text);
    }
    return v;
}

} // namespace nnbaton
