/**
 * @file
 * Exponential backoff with deterministic jitter and bounded retries.
 *
 * Every network caller in the tree (the fabric coordinator retrying a
 * worker, `nn-baton request` retrying a daemon) shares this one
 * policy object so retry behaviour is uniform and testable.  The
 * jitter is derived from a seeded xorshift stream rather than a
 * wall-clock RNG: two runs with the same seed produce the same delay
 * sequence, which keeps the chaos tests reproducible while still
 * de-synchronising real fleets (every worker seeds with its own
 * endpoint hash).
 */

#ifndef NNBATON_COMMON_BACKOFF_HPP
#define NNBATON_COMMON_BACKOFF_HPP

#include <cstdint>

namespace nnbaton {

/** Retry policy knobs (milliseconds). */
struct BackoffPolicy
{
    int64_t initialDelayMs = 50;  //!< first retry delay
    int64_t maxDelayMs = 5000;    //!< exponential growth cap
    double multiplier = 2.0;      //!< per-attempt growth factor
    double jitter = 0.25;         //!< +/- fraction of the base delay
    int maxRetries = 5;           //!< attempts before giving up
};

/**
 * One retry sequence.  Usage:
 *
 * @code
 *   Backoff backoff(policy, seed);
 *   while (!backoff.exhausted()) {
 *       if (tryOnce().ok()) break;
 *       sleepMs(backoff.nextDelayMs());
 *   }
 * @endcode
 */
class Backoff
{
  public:
    explicit Backoff(const BackoffPolicy &policy, uint64_t seed = 1);

    /** True once maxRetries delays have been handed out. */
    bool exhausted() const { return attempts_ >= policy_.maxRetries; }

    /** Retries consumed so far. */
    int attempts() const { return attempts_; }

    /**
     * The next delay in milliseconds: base * multiplier^attempt,
     * capped at maxDelayMs, with +/- jitter applied from the seeded
     * stream.  Advances the attempt counter.
     */
    int64_t nextDelayMs();

    /** Restart the sequence (a success resets the failure streak). */
    void reset() { attempts_ = 0; }

  private:
    uint64_t nextRandom();

    BackoffPolicy policy_;
    uint64_t state_;
    int attempts_ = 0;
};

/** Interruptible sleep: returns early (false) once @p cancelled()
 *  reports true, polling every few milliseconds.  Null predicate
 *  sleeps the full delay. */
class CancelToken;
bool sleepWithCancel(int64_t delayMs, const CancelToken *cancel);

} // namespace nnbaton

#endif // NNBATON_COMMON_BACKOFF_HPP
