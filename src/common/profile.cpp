#include "common/profile.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/json.hpp"
#include "common/table.hpp"

namespace nnbaton {
namespace obs {

ProfileReport
buildProfile(const std::vector<TraceEvent> &events)
{
    struct Agg
    {
        int64_t count = 0;
        uint64_t totalNs = 0;
        uint64_t maxNs = 0;
    };
    // Span names are static strings, but aggregate by value so two
    // sites sharing one phase name merge.
    std::map<std::string, Agg> byName;
    for (const TraceEvent &e : events) {
        Agg &a = byName[e.name];
        ++a.count;
        a.totalNs += e.durNs;
        a.maxNs = std::max(a.maxNs, e.durNs);
    }

    ProfileReport report;
    report.events = static_cast<int64_t>(events.size());
    report.dropped = droppedTraceEvents();
    for (const auto &[name, a] : byName) {
        PhaseProfile p;
        p.name = name;
        p.count = a.count;
        p.totalMs = static_cast<double>(a.totalNs) * 1e-6;
        p.meanUs = a.count
                       ? static_cast<double>(a.totalNs) * 1e-3 / a.count
                       : 0.0;
        p.maxUs = static_cast<double>(a.maxNs) * 1e-3;
        report.phases.push_back(std::move(p));
    }
    std::sort(report.phases.begin(), report.phases.end(),
              [](const PhaseProfile &a, const PhaseProfile &b) {
                  return a.totalMs > b.totalMs;
              });
    return report;
}

ProfileReport
buildProfile()
{
    return buildProfile(snapshotTrace());
}

std::string
formatProfile(const ProfileReport &report)
{
    std::ostringstream ss;
    if (report.empty()) {
        ss << "profile: no trace spans collected (run with tracing "
              "enabled)\n";
        return ss.str();
    }
    TextTable t({"phase", "count", "total ms", "mean us", "max us"});
    for (const PhaseProfile &p : report.phases) {
        t.newRow()
            .add(p.name)
            .add(p.count)
            .add(p.totalMs, 3)
            .add(p.meanUs, 1)
            .add(p.maxUs, 1);
    }
    t.print(ss);
    if (report.dropped) {
        ss << "(" << report.dropped
           << " spans dropped at the per-thread buffer cap)\n";
    }
    return ss.str();
}

void
writeProfileJson(JsonWriter &j, const ProfileReport &report)
{
    j.beginObject();
    j.field("events", report.events);
    j.field("dropped", report.dropped);
    j.key("phases").beginArray();
    for (const PhaseProfile &p : report.phases) {
        j.beginObject();
        j.field("name", p.name);
        j.field("count", p.count);
        j.field("total_ms", p.totalMs);
        j.field("mean_us", p.meanUs);
        j.field("max_us", p.maxUs);
        j.endObject();
    }
    j.endArray();
    j.endObject();
}

} // namespace obs
} // namespace nnbaton
