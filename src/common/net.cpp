#include "common/net.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace nnbaton {

namespace {

using SteadyClock = std::chrono::steady_clock;

double
remainingSeconds(SteadyClock::time_point deadline)
{
    return std::chrono::duration<double>(deadline - SteadyClock::now())
        .count();
}

/** Poll @p fd for @p events until the deadline; OK when ready. */
Status
waitReady(int fd, short events, SteadyClock::time_point deadline,
          const char *what)
{
    for (;;) {
        const double remaining = remainingSeconds(deadline);
        if (remaining <= 0)
            return errDeadlineExceeded("%s timed out", what);
        pollfd p{};
        p.fd = fd;
        p.events = events;
        const int timeoutMs = static_cast<int>(remaining * 1000) + 1;
        const int ready = ::poll(&p, 1, timeoutMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return errUnavailable("%s: poll: %s", what,
                                  std::strerror(errno));
        }
        if (ready == 0)
            continue; // re-check the deadline
        if (p.revents & (POLLERR | POLLNVAL)) {
            return errUnavailable("%s: socket error", what);
        }
        return Status::okStatus();
    }
}

Status
setNonBlocking(int fd, bool enable)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return errUnavailable("fcntl: %s", std::strerror(errno));
    const int want = enable ? (flags | O_NONBLOCK)
                            : (flags & ~O_NONBLOCK);
    if (::fcntl(fd, F_SETFL, want) < 0)
        return errUnavailable("fcntl: %s", std::strerror(errno));
    return Status::okStatus();
}

} // namespace

std::string
Endpoint::toString() const
{
    if (!tcp)
        return unixPath;
    char buf[64];
    std::snprintf(buf, sizeof(buf), ":%d", port);
    return host + buf;
}

StatusOr<Endpoint>
parseEndpoint(const std::string &text)
{
    if (text.empty())
        return errInvalidArgument("empty endpoint");
    Endpoint ep;
    const size_t colon = text.rfind(':');
    // A path may legitimately contain no colon; a colon followed by
    // digits marks a TCP endpoint ("host:7070" or ":7070").
    if (colon != std::string::npos && colon + 1 < text.size()) {
        bool digits = true;
        for (size_t i = colon + 1; i < text.size(); ++i) {
            if (text[i] < '0' || text[i] > '9') {
                digits = false;
                break;
            }
        }
        if (digits && text.find('/') == std::string::npos) {
            const long port = std::strtol(text.c_str() + colon + 1,
                                          nullptr, 10);
            // Port 0 is allowed: binding ":0" asks the kernel for a
            // free port (connectEndpoint still rejects it).
            if (port < 0 || port > 65535) {
                return errInvalidArgument(
                    "endpoint '%s': port out of range", text.c_str());
            }
            ep.tcp = true;
            ep.host = colon == 0 ? std::string("127.0.0.1")
                                 : text.substr(0, colon);
            ep.port = static_cast<int>(port);
            return ep;
        }
    }
    ep.tcp = false;
    ep.unixPath = text;
    return ep;
}

StatusOr<int>
connectEndpoint(const Endpoint &endpoint, double timeoutSeconds)
{
    const auto deadline =
        SteadyClock::now() +
        std::chrono::duration_cast<SteadyClock::duration>(
            std::chrono::duration<double>(timeoutSeconds));

    int fd = -1;
    sockaddr_storage storage{};
    socklen_t addrLen = 0;
    if (endpoint.tcp) {
        if (endpoint.port < 1) {
            return errInvalidArgument(
                "cannot connect to port %d", endpoint.port);
        }
        auto *addr = reinterpret_cast<sockaddr_in *>(&storage);
        addr->sin_family = AF_INET;
        addr->sin_port =
            htons(static_cast<uint16_t>(endpoint.port));
        // Dotted-quad only (plus the localhost convenience): the
        // fabric addresses workers by IP, keeping the tree free of a
        // resolver dependency.
        const char *host = endpoint.host == "localhost"
                               ? "127.0.0.1"
                               : endpoint.host.c_str();
        if (::inet_pton(AF_INET, host, &addr->sin_addr) != 1) {
            return errInvalidArgument(
                "endpoint '%s': expected a dotted-quad IPv4 address",
                endpoint.host.c_str());
        }
        addrLen = sizeof(sockaddr_in);
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
    } else {
        auto *addr = reinterpret_cast<sockaddr_un *>(&storage);
        addr->sun_family = AF_UNIX;
        if (endpoint.unixPath.empty() ||
            endpoint.unixPath.size() >= sizeof(addr->sun_path)) {
            return errInvalidArgument("socket path '%s' too long",
                                      endpoint.unixPath.c_str());
        }
        std::memcpy(addr->sun_path, endpoint.unixPath.c_str(),
                    endpoint.unixPath.size() + 1);
        addrLen = sizeof(sockaddr_un);
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    }
    if (fd < 0)
        return errUnavailable("socket: %s", std::strerror(errno));

    Status s = setNonBlocking(fd, true);
    if (!s.ok()) {
        ::close(fd);
        return s;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&storage),
                  addrLen) != 0) {
        if (errno != EINPROGRESS && errno != EAGAIN) {
            const Status err =
                errUnavailable("connect %s: %s",
                               endpoint.toString().c_str(),
                               std::strerror(errno));
            ::close(fd);
            return err;
        }
        s = waitReady(fd, POLLOUT, deadline, "connect");
        if (!s.ok()) {
            ::close(fd);
            return s.withContext("connect " + endpoint.toString());
        }
        int soError = 0;
        socklen_t len = sizeof(soError);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len) !=
                0 ||
            soError != 0) {
            const Status err = errUnavailable(
                "connect %s: %s", endpoint.toString().c_str(),
                std::strerror(soError ? soError : errno));
            ::close(fd);
            return err;
        }
    }
    s = setNonBlocking(fd, false);
    if (!s.ok()) {
        ::close(fd);
        return s;
    }
    if (endpoint.tcp) {
        // Small frames; latency matters more than throughput.
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    return fd;
}

void
LineChannel::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

Status
LineChannel::sendLine(const std::string &line, double timeoutSeconds)
{
    if (fd_ < 0)
        return errFailedPrecondition("sendLine on a closed channel");
    const auto deadline =
        SteadyClock::now() +
        std::chrono::duration_cast<SteadyClock::duration>(
            std::chrono::duration<double>(timeoutSeconds));
    std::string framed = line;
    framed.push_back('\n');
    size_t off = 0;
    while (off < framed.size()) {
        // MSG_DONTWAIT + poll keeps the deadline authoritative even
        // against a peer that stops draining its receive window.
        const ssize_t n =
            ::send(fd_, framed.data() + off, framed.size() - off,
                   MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                Status s = waitReady(fd_, POLLOUT, deadline, "send");
                if (!s.ok())
                    return s;
                continue;
            }
            return errUnavailable("send: %s", std::strerror(errno));
        }
        off += static_cast<size_t>(n);
    }
    return Status::okStatus();
}

StatusOr<std::string>
LineChannel::recvLine(double timeoutSeconds)
{
    if (fd_ < 0)
        return errFailedPrecondition("recvLine on a closed channel");
    const auto deadline =
        SteadyClock::now() +
        std::chrono::duration_cast<SteadyClock::duration>(
            std::chrono::duration<double>(timeoutSeconds));
    size_t nl;
    while ((nl = buffer_.find('\n')) == std::string::npos) {
        Status s = waitReady(fd_, POLLIN, deadline, "recv");
        if (!s.ok())
            return s;
        char chunk[4096];
        const ssize_t n =
            ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            return errUnavailable("recv: %s", std::strerror(errno));
        }
        if (n == 0) {
            return errUnavailable(
                "peer closed the connection mid-line");
        }
        buffer_.append(chunk, static_cast<size_t>(n));
    }
    std::string line = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    return line;
}

StatusOr<LineChannel>
connectLineChannel(const std::string &endpoint, double timeoutSeconds)
{
    StatusOr<Endpoint> parsed = parseEndpoint(endpoint);
    if (!parsed.ok())
        return parsed.status();
    StatusOr<int> fd = connectEndpoint(parsed.value(), timeoutSeconds);
    if (!fd.ok())
        return fd.status();
    return LineChannel(fd.value());
}

} // namespace nnbaton
