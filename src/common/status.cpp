#include "common/status.hpp"

#include <cstdarg>

#include "common/logging.hpp"

namespace nnbaton {

const char *
toString(StatusCode code)
{
    switch (code) {
    case StatusCode::Ok:
        return "OK";
    case StatusCode::Cancelled:
        return "CANCELLED";
    case StatusCode::InvalidArgument:
        return "INVALID_ARGUMENT";
    case StatusCode::NotFound:
        return "NOT_FOUND";
    case StatusCode::DeadlineExceeded:
        return "DEADLINE_EXCEEDED";
    case StatusCode::FailedPrecondition:
        return "FAILED_PRECONDITION";
    case StatusCode::DataLoss:
        return "DATA_LOSS";
    case StatusCode::Internal:
        return "INTERNAL";
    case StatusCode::Unavailable:
        return "UNAVAILABLE";
    }
    return "UNKNOWN";
}

Status
Status::withContext(const std::string &context) const
{
    if (ok())
        return *this;
    return Status(code_, context + ": " + message_);
}

std::string
Status::toString() const
{
    if (ok())
        return "OK";
    return std::string(nnbaton::toString(code_)) + ": " + message_;
}

namespace {

Status
makeStatus(StatusCode code, const char *fmt, va_list ap)
{
    return Status(code, vstrprintf(fmt, ap));
}

} // namespace

#define NNBATON_STATUS_CTOR(fn, code)                                  \
    Status fn(const char *fmt, ...)                                    \
    {                                                                  \
        va_list ap;                                                    \
        va_start(ap, fmt);                                             \
        Status s = makeStatus(StatusCode::code, fmt, ap);              \
        va_end(ap);                                                    \
        return s;                                                      \
    }

NNBATON_STATUS_CTOR(errCancelled, Cancelled)
NNBATON_STATUS_CTOR(errInvalidArgument, InvalidArgument)
NNBATON_STATUS_CTOR(errNotFound, NotFound)
NNBATON_STATUS_CTOR(errDeadlineExceeded, DeadlineExceeded)
NNBATON_STATUS_CTOR(errFailedPrecondition, FailedPrecondition)
NNBATON_STATUS_CTOR(errDataLoss, DataLoss)
NNBATON_STATUS_CTOR(errInternal, Internal)
NNBATON_STATUS_CTOR(errUnavailable, Unavailable)

#undef NNBATON_STATUS_CTOR

void
throwStatus(Status status)
{
    if (status.ok()) {
        status = errInternal(
            "throwStatus called with an OK status (library bug)");
    }
    throw StatusError(std::move(status));
}

} // namespace nnbaton
