#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hpp"

namespace nnbaton {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

TextTable &
TextTable::newRow()
{
    rows_.emplace_back();
    return *this;
}

TextTable &
TextTable::add(const std::string &cell)
{
    if (rows_.empty())
        newRow();
    rows_.back().push_back(cell);
    return *this;
}

TextTable &
TextTable::add(int64_t value)
{
    return add(std::to_string(value));
}

TextTable &
TextTable::add(double value, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << value;
    return add(ss.str());
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cell;
        }
        os << "\n";
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace nnbaton
