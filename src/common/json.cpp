#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"

namespace nnbaton {

void
JsonWriter::separator()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (!hasElement_.empty()) {
        if (hasElement_.back())
            os_ << ",";
        hasElement_.back() = true;
    }
}

void
JsonWriter::escape(const std::string &s)
{
    os_ << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os_ << "\\\"";
            break;
          case '\\':
            os_ << "\\\\";
            break;
          case '\n':
            os_ << "\\n";
            break;
          case '\t':
            os_ << "\\t";
            break;
          case '\r':
            os_ << "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os_ << buf;
            } else {
                os_ << c;
            }
        }
    }
    os_ << '"';
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    os_ << "{";
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (hasElement_.empty())
        panic("JsonWriter: endObject without beginObject");
    hasElement_.pop_back();
    os_ << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    os_ << "[";
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (hasElement_.empty())
        panic("JsonWriter: endArray without beginArray");
    hasElement_.pop_back();
    os_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    separator();
    escape(name);
    os_ << ":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separator();
    escape(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    separator();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separator();
    if (!std::isfinite(v)) {
        os_ << "null";
        return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::valueExact(double v)
{
    separator();
    if (!std::isfinite(v)) {
        os_ << "null";
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    os_ << (v ? "true" : "false");
    return *this;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace {

/** Recursive-descent parser over the document text. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonParseResult
    parse()
    {
        JsonParseResult r;
        skipWs();
        if (!parseValue(r.value))
            return fail(r);
        skipWs();
        if (pos_ != text_.size()) {
            error_ = "trailing characters after document";
            return fail(r);
        }
        return r;
    }

  private:
    static constexpr int kMaxDepth = 256;

    JsonParseResult
    fail(JsonParseResult &r)
    {
        r.error = error_.empty() ? "parse error" : error_;
        r.errorOffset = pos_;
        r.value = JsonValue{};
        return r;
    }

    bool
    atEnd() const
    {
        return pos_ >= text_.size();
    }

    char
    peek() const
    {
        return text_[pos_];
    }

    void
    skipWs()
    {
        while (!atEnd()) {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    expect(char c)
    {
        if (atEnd() || peek() != c) {
            error_ = strprintf("expected '%c'", c);
            return false;
        }
        ++pos_;
        return true;
    }

    bool
    literal(const char *word, JsonValue &out, JsonValue::Type type,
            bool boolean)
    {
        const size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0) {
            error_ = strprintf("invalid literal (expected %s)", word);
            return false;
        }
        pos_ += len;
        out.type = type;
        out.boolean = boolean;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (++depth_ > kMaxDepth) {
            error_ = "nesting too deep";
            return false;
        }
        skipWs();
        if (atEnd()) {
            error_ = "unexpected end of input";
            return false;
        }
        bool ok = false;
        switch (peek()) {
          case '{':
            ok = parseObject(out);
            break;
          case '[':
            ok = parseArray(out);
            break;
          case '"':
            out.type = JsonValue::Type::String;
            ok = parseString(out.string);
            break;
          case 't':
            ok = literal("true", out, JsonValue::Type::Bool, true);
            break;
          case 'f':
            ok = literal("false", out, JsonValue::Type::Bool, false);
            break;
          case 'n':
            ok = literal("null", out, JsonValue::Type::Null, false);
            break;
          default:
            ok = parseNumber(out);
            break;
        }
        --depth_;
        return ok;
    }

    bool
    parseObject(JsonValue &out)
    {
        ++pos_; // '{'
        out.type = JsonValue::Type::Object;
        skipWs();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (atEnd() || peek() != '"') {
                error_ = "expected object key";
                return false;
            }
            if (!parseString(key))
                return false;
            skipWs();
            if (!expect(':'))
                return false;
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.object.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (atEnd()) {
                error_ = "unterminated object";
                return false;
            }
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            return expect('}');
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        ++pos_; // '['
        out.type = JsonValue::Type::Array;
        skipWs();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.array.push_back(std::move(v));
            skipWs();
            if (atEnd()) {
                error_ = "unterminated array";
                return false;
            }
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            return expect(']');
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // '"'
        out.clear();
        while (true) {
            if (atEnd()) {
                error_ = "unterminated string";
                return false;
            }
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (atEnd()) {
                error_ = "unterminated escape";
                return false;
            }
            c = text_[pos_++];
            switch (c) {
              case '"':
              case '\\':
              case '/':
                out += c;
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    error_ = "truncated \\u escape";
                    return false;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        error_ = "invalid \\u escape";
                        return false;
                    }
                }
                // The writer only emits \u00xx control escapes; keep
                // the parser at the same scope (Latin-1 subset).
                if (code > 0xff) {
                    error_ = "\\u escape above U+00FF unsupported";
                    return false;
                }
                out += static_cast<char>(code);
                break;
              }
              default:
                error_ = "invalid escape";
                return false;
            }
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        const size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        while (!atEnd() &&
               (std::isdigit(static_cast<unsigned char>(peek())) ||
                peek() == '.' || peek() == 'e' || peek() == 'E' ||
                peek() == '+' || peek() == '-')) {
            ++pos_;
        }
        const std::string token = text_.substr(start, pos_ - start);
        if (token.empty()) {
            error_ = "invalid value";
            return false;
        }
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
            error_ = strprintf("invalid number '%s'", token.c_str());
            pos_ = start;
            return false;
        }
        out.type = JsonValue::Type::Number;
        out.number = v;
        return true;
    }

    const std::string &text_;
    size_t pos_ = 0;
    int depth_ = 0;
    std::string error_;
};

} // namespace

JsonParseResult
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace nnbaton
