#include "common/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/logging.hpp"

namespace nnbaton {

void
JsonWriter::separator()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (!hasElement_.empty()) {
        if (hasElement_.back())
            os_ << ",";
        hasElement_.back() = true;
    }
}

void
JsonWriter::escape(const std::string &s)
{
    os_ << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os_ << "\\\"";
            break;
          case '\\':
            os_ << "\\\\";
            break;
          case '\n':
            os_ << "\\n";
            break;
          case '\t':
            os_ << "\\t";
            break;
          case '\r':
            os_ << "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os_ << buf;
            } else {
                os_ << c;
            }
        }
    }
    os_ << '"';
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    os_ << "{";
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (hasElement_.empty())
        panic("JsonWriter: endObject without beginObject");
    hasElement_.pop_back();
    os_ << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    os_ << "[";
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (hasElement_.empty())
        panic("JsonWriter: endArray without beginArray");
    hasElement_.pop_back();
    os_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    separator();
    escape(name);
    os_ << ":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separator();
    escape(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    separator();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separator();
    if (!std::isfinite(v)) {
        os_ << "null";
        return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    os_ << (v ? "true" : "false");
    return *this;
}

} // namespace nnbaton
