/**
 * @file
 * Small arithmetic helpers shared across the library.
 */

#ifndef NNBATON_COMMON_UTIL_HPP
#define NNBATON_COMMON_UTIL_HPP

#include <cstdint>
#include <vector>

#include "common/logging.hpp"

namespace nnbaton {

/** Ceiling division for non-negative integers. */
constexpr int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b. */
constexpr int64_t
roundUp(int64_t a, int64_t b)
{
    return ceilDiv(a, b) * b;
}

/** True if @p v is a power of two (v > 0). */
constexpr bool
isPow2(int64_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

/** All divisors of @p n in increasing order. */
inline std::vector<int>
divisors(int n)
{
    std::vector<int> out;
    for (int d = 1; d <= n; ++d) {
        if (n % d == 0)
            out.push_back(d);
    }
    return out;
}

/**
 * All ordered factor pairs (a, b) with a * b == n.
 * Used to enumerate planar partition shapes (fh x fw).
 */
inline std::vector<std::pair<int, int>>
factorPairs(int n)
{
    std::vector<std::pair<int, int>> out;
    for (int d : divisors(n))
        out.emplace_back(d, n / d);
    return out;
}

/** Kilobyte and megabyte helpers (binary, 1 KB = 1024 B). */
constexpr int64_t operator""_KB(unsigned long long v)
{
    return static_cast<int64_t>(v) * 1024;
}

constexpr int64_t operator""_MB(unsigned long long v)
{
    return static_cast<int64_t>(v) * 1024 * 1024;
}

} // namespace nnbaton

#endif // NNBATON_COMMON_UTIL_HPP
