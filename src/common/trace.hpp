/**
 * @file
 * Scoped trace spans for the DSE/mapping pipeline.
 *
 * Usage: drop NNBATON_TRACE_SCOPE("dse.map_model") at the top of a
 * scope; when tracing is enabled (obs::setTracingEnabled) the span's
 * wall-clock extent is recorded into a per-thread buffer and can be
 * exported as Chrome trace-event JSON (open in Perfetto or
 * chrome://tracing).  When tracing is disabled the macro costs one
 * relaxed atomic load and a predictable branch; defining
 * NNBATON_TRACE_DISABLED compiles every span site away entirely.
 *
 * Recording is observation-only and lock-free on the hot path: each
 * thread appends to its own chunked buffer and publishes the event
 * count with a release store, so writers never block each other and
 * the exporter (which reads under the rarely-taken chunk mutex with
 * an acquire load of the count) sees only fully written events.  The
 * buffers are owned by a process-wide registry and outlive their
 * threads, so pools may come and go between export calls.
 *
 * Span names must be string literals (or otherwise outlive the
 * process): buffers store the pointer, not a copy.
 */

#ifndef NNBATON_COMMON_TRACE_HPP
#define NNBATON_COMMON_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace nnbaton {

class JsonWriter; // common/json.hpp

namespace obs {

/** One completed span, times in nanoseconds since the trace origin. */
struct TraceEvent
{
    const char *name = nullptr; //!< static string, "subsystem.phase"
    uint32_t tid = 0;           //!< small per-thread id (not the OS tid)
    uint64_t startNs = 0;
    uint64_t durNs = 0;
    uint64_t rid = 0; //!< request id the span ran under (0 = none)
};

/** Turn span collection on or off (off by default). */
void setTracingEnabled(bool enabled);

/** True when spans are currently being collected. */
bool tracingEnabled();

/** Nanoseconds since the process trace origin (steady clock). */
uint64_t traceNowNs();

/** Append a completed span to the calling thread's buffer. */
void recordSpan(const char *name, uint64_t startNs, uint64_t endNs);

/**
 * Copy out every event recorded so far, in per-thread buffer order.
 * Safe to call while other threads are still tracing: events
 * published before the call are included, later ones are not.
 */
std::vector<TraceEvent> snapshotTrace();

/** Events discarded because a thread buffer hit its capacity. */
int64_t droppedTraceEvents();

/**
 * Write the collected spans as a Chrome trace-event JSON object
 * ({"traceEvents":[...]}).  The "cat" of each event is the span-name
 * prefix before the first '.'.
 */
void writeChromeTrace(std::ostream &os);

// ---------------------------------------------------------------------
// Request-scoped context: a per-thread request id threaded through
// spans, flight-recorder events and log lines so everything one
// request touched can be correlated postmortem.

/** Allocate a fresh nonzero request id (process-wide counter). */
uint64_t nextRequestId();

/** Set the calling thread's current request id (0 clears it). */
void setCurrentRequestId(uint64_t rid);

/** The calling thread's current request id (0 when outside one). */
uint64_t currentRequestId();

/** The calling thread's small trace id (allocates it on first use). */
uint32_t currentThreadTag();

/** RAII: set the thread's request id for a scope, restore the old. */
class RequestIdScope
{
  public:
    explicit RequestIdScope(uint64_t rid) : prev_(currentRequestId())
    {
        setCurrentRequestId(rid);
    }

    ~RequestIdScope() { setCurrentRequestId(prev_); }

    RequestIdScope(const RequestIdScope &) = delete;
    RequestIdScope &operator=(const RequestIdScope &) = delete;

  private:
    const uint64_t prev_;
};

// ---------------------------------------------------------------------
// Flight recorder: an always-on, fixed-size per-thread ring of the
// most recent spans and marks (riding the same thread buffers as the
// tracer).  Unlike tracing it is bounded and enabled by default, so a
// crash, deadline blowup or failed request can always dump the last
// few hundred events per thread as a postmortem.

/** Turn the flight recorder on or off (ON by default). */
void setFlightRecorderEnabled(bool enabled);

/** True when spans/marks are being captured into the flight rings. */
bool flightRecorderEnabled();

/** Per-thread flight ring capacity in events (a power of two). */
size_t flightRingCapacity();

/** Record an instant event (durNs 0) into the calling thread's ring. */
void flightMark(const char *name);

/**
 * Write the flight recorder as a JSON *value* at the writer's current
 * position: {"capacity":N,"truncated":b,"threads":[{"tid":t,
 * "events":[{"name":...,"rid":...,"startNs":...,"durNs":...}]}]}.
 * @p maxEventsPerThread 0 dumps each full ring; a smaller cap keeps
 * only the newest events and sets "truncated".
 */
void writeFlightRecorderJson(JsonWriter &j,
                             size_t maxEventsPerThread = 0);

/** writeFlightRecorderJson wrapped as {"flightRecorder":...}. */
void writeFlightRecorder(std::ostream &os,
                         size_t maxEventsPerThread = 0);

/**
 * Async-signal-safe flight dump: walks a lock-free buffer list and
 * hand-formats the same JSON document straight to @p fd (no locks, no
 * allocation, write(2) only).  Events may be torn mid-overwrite under
 * concurrent writers — fields are individually consistent (each slot
 * field is an atomic) but a slot can mix two events; acceptable for a
 * best-effort postmortem.
 */
void writeFlightRecorderToFd(int fd);

/**
 * Install a fatal-signal handler (SIGSEGV/SIGBUS/SIGFPE/SIGILL/
 * SIGABRT) that dumps the flight recorder to @p path (stderr when
 * null/empty), then re-raises with the default disposition so the
 * process still dies with the original signal.  Idempotent; the path
 * is copied into static storage.
 */
void installFlightSignalHandler(const char *path);

/** RAII span; prefer the NNBATON_TRACE_SCOPE macro. */
class TraceScope
{
  public:
    explicit TraceScope(const char *name)
    {
        if (tracingEnabled() || flightRecorderEnabled()) {
            name_ = name;
            start_ = traceNowNs();
        }
    }

    ~TraceScope()
    {
        if (name_)
            recordSpan(name_, start_, traceNowNs());
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    const char *name_ = nullptr; //!< null when tracing was off at entry
    uint64_t start_ = 0;
};

} // namespace obs
} // namespace nnbaton

#define NNBATON_TRACE_CAT2(a, b) a##b
#define NNBATON_TRACE_CAT(a, b) NNBATON_TRACE_CAT2(a, b)

#ifdef NNBATON_TRACE_DISABLED
#define NNBATON_TRACE_SCOPE(name) static_cast<void>(0)
#else
/** Trace the enclosing scope as a span named @p name (a literal). */
#define NNBATON_TRACE_SCOPE(name)                                       \
    ::nnbaton::obs::TraceScope NNBATON_TRACE_CAT(nnbatonTraceScope_,    \
                                                 __LINE__)(name)
#endif

#endif // NNBATON_COMMON_TRACE_HPP
