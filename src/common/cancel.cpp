#include "common/cancel.hpp"

#include <chrono>
#include <csignal>

namespace nnbaton {

namespace {

int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

extern "C" void
cancelSignalHandler(int)
{
    // One relaxed atomic store: async-signal-safe.  Restoring the
    // default disposition means a second signal kills the process
    // even if the run never polls the token.
    globalCancelToken().requestCancel();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
}

} // namespace

void
CancelToken::setDeadlineAfter(double seconds)
{
    int64_t ns = steadyNowNs() +
                 static_cast<int64_t>(seconds * 1e9);
    deadlineNs_.store(ns, std::memory_order_relaxed);
}

void
CancelToken::reset()
{
    cancelled_.store(false, std::memory_order_relaxed);
    deadlineNs_.store(0, std::memory_order_relaxed);
    parent_.store(nullptr, std::memory_order_relaxed);
}

bool
CancelToken::cancelled() const
{
    if (cancelled_.load(std::memory_order_relaxed))
        return true;
    int64_t deadline = deadlineNs_.load(std::memory_order_relaxed);
    if (deadline != 0 && steadyNowNs() >= deadline)
        return true;
    const CancelToken *parent =
        parent_.load(std::memory_order_relaxed);
    return parent && parent->cancelled();
}

Status
CancelToken::toStatus() const
{
    if (cancelled_.load(std::memory_order_relaxed))
        return errCancelled("cancellation requested");
    int64_t deadline = deadlineNs_.load(std::memory_order_relaxed);
    if (deadline != 0 && steadyNowNs() >= deadline)
        return errDeadlineExceeded("wall-clock deadline expired");
    const CancelToken *parent =
        parent_.load(std::memory_order_relaxed);
    if (parent)
        return parent->toStatus();
    return Status::okStatus();
}

CancelToken &
globalCancelToken()
{
    static CancelToken token;
    return token;
}

void
installCancelSignalHandlers()
{
    std::signal(SIGINT, cancelSignalHandler);
    std::signal(SIGTERM, cancelSignalHandler);
}

} // namespace nnbaton
