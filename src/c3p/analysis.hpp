/**
 * @file
 * The C3P (Critical-Capacity Critical-Position) buffer-reuse analysis
 * (paper section IV-B, equations 1-2).
 *
 * For a buffer of a given capacity and a temporal loop nest, the
 * engine finds the outermost nest boundary whose enclosed tensor
 * footprint still fits the buffer (the retention boundary).  Loops
 * relevant to the tensor are the paper's critical positions and the
 * footprints at their boundaries are the critical capacities;
 * irrelevant loops never grow the footprint, so they are crossed for
 * free — exactly the reuse-region behaviour of the paper.  The fill
 * traffic from the parent memory level is then
 *
 *     fills = footprint(retention) * prod(trips of loops above it)
 *
 * which equals the paper's A0 * prod(P_k) penalty form (the paper
 * writes A0 * (1 + prod P_k), counting the intrinsic load separately;
 * we fold it in, the difference is the off-by-one of the first load).
 */

#ifndef NNBATON_C3P_ANALYSIS_HPP
#define NNBATON_C3P_ANALYSIS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "c3p/footprint.hpp"
#include "dataflow/loopnest.hpp"

namespace nnbaton {

/** One critical position found by the scan (reported for inspection). */
struct CriticalPoint
{
    size_t boundary;          //!< nest boundary index (above loops[b])
    int64_t criticalCapacity; //!< bytes needed to retain across it
};

/** Result of analysing one buffer for one tensor. */
struct ReuseResult
{
    int64_t fillBytes = 0;      //!< traffic from the parent level
    int64_t footprintAtFit = 0; //!< retained working set in bytes
    size_t fitBoundary = 0;     //!< retention boundary index
    int64_t intrinsicBytes = 0; //!< A0: footprint of the whole nest
    std::vector<CriticalPoint> criticalPoints;

    /** Penalty factor fills / A0 (1.0 when the buffer is large enough). */
    double penalty() const
    {
        return intrinsicBytes > 0
                   ? static_cast<double>(fillBytes) / intrinsicBytes
                   : 1.0;
    }
};

/**
 * Analyse @p tensor through @p nest for a buffer of @p capacity_bytes.
 *
 * The atom footprint is assumed to fit (legality-checked by the
 * mapper); if it does not, fills degenerate to atom * total trips and
 * a warning flag is set in the result via fitBoundary == loops.size().
 */
ReuseResult analyzeBuffer(const LoopNest &nest, Tensor tensor,
                          const ConvLayer &layer, int64_t capacity_bytes);

/**
 * analyzeBuffer() in a single inward-to-outward pass: every boundary
 * footprint is produced by one running span accumulation instead of an
 * O(n) spanBelow() walk per boundary, cutting the scan from quadratic
 * to linear in the nest depth.  Span products are the same exact
 * int64 multiplications in a different (commutative) order, so the
 * result is bit-identical to analyzeBuffer() on every field — the
 * incremental evaluator's hot path relies on that, and the C3P fuzz
 * suite pins it.
 */
ReuseResult analyzeBufferFast(const LoopNest &nest, Tensor tensor,
                              const ConvLayer &layer,
                              int64_t capacity_bytes);

/**
 * analyzeBufferFast() writing into caller-owned storage: @p out's
 * criticalPoints vector keeps its capacity across calls, so a hot loop
 * feeding the same result slot back in allocates nothing in the steady
 * state (the incremental evaluator's memo fills its ring entries this
 * way).  All fields are fully (re)assigned.
 */
void analyzeBufferFastInto(const LoopNest &nest, Tensor tensor,
                           const ConvLayer &layer, int64_t capacity_bytes,
                           ReuseResult &out);

} // namespace nnbaton

#endif // NNBATON_C3P_ANALYSIS_HPP
