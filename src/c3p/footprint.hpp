/**
 * @file
 * Tensor footprint functions for the C3P analysis.
 *
 * A footprint is the number of unique bytes of a tensor touched by a
 * tile span.  Activations honour the convolution sliding window: a
 * span of ho output rows with kernel-span kh and stride s touches
 * (ho - 1) * s + kh input rows (the halo term of the paper).
 */

#ifndef NNBATON_C3P_FOOTPRINT_HPP
#define NNBATON_C3P_FOOTPRINT_HPP

#include <cstdint>

#include "dataflow/loopnest.hpp"
#include "nn/layer.hpp"

namespace nnbaton {

/** The three tensors of a convolution. */
enum class Tensor
{
    Weights,
    Activations,
    Outputs,
};

const char *toString(Tensor t);

/**
 * Unique bytes (8-bit elements) of @p tensor touched by @p span for
 * layer @p layer.
 */
int64_t footprintBytes(Tensor tensor, const TileSpan &span,
                       const ConvLayer &layer);

/** True if @p dim changes the footprint of @p tensor for @p layer
 *  (the output-channel dim selects input channels in depthwise
 *  layers). */
bool isRelevant(Tensor tensor, Dim dim, const ConvLayer &layer);

} // namespace nnbaton

#endif // NNBATON_C3P_FOOTPRINT_HPP
