#include "c3p/access.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/status.hpp"
#include "common/util.hpp"
#include "dataflow/loopnest.hpp"

namespace nnbaton {

std::string
AccessCounts::toString() const
{
    return strprintf(
        "dramR %lld dramW %lld d2d %lld | al2 %lld/%lld al1 %lld/%lld "
        "wl1 %lld/%lld ol1 %lld ol2 %lld/%lld | macs %lld vec %lld",
        static_cast<long long>(dramReadBits()),
        static_cast<long long>(dramWriteBits),
        static_cast<long long>(d2dBits),
        static_cast<long long>(al2ReadBits),
        static_cast<long long>(al2WriteBits),
        static_cast<long long>(al1ReadBits),
        static_cast<long long>(al1WriteBits),
        static_cast<long long>(wl1ReadBits),
        static_cast<long long>(wl1WriteBits),
        static_cast<long long>(ol1RmwBits),
        static_cast<long long>(ol2ReadBits),
        static_cast<long long>(ol2WriteBits),
        static_cast<long long>(macOps),
        static_cast<long long>(vectorOps));
}

AccessAnalysis
analyzeMapping(const ConvLayer &layer, const AcceleratorConfig &cfg,
               const Mapping &mapping, const AnalysisOptions &options)
{
    const std::string reason = checkMapping(layer, cfg, mapping);
    if (!reason.empty()) {
        throwStatus(errInvalidArgument(
            "analyzeMapping(%s, %s): illegal mapping: %s",
            layer.name.c_str(), mapping.toString().c_str(),
            reason.c_str()));
    }
    return analyzeMappingUnchecked(layer, cfg, mapping, options);
}

AccessAnalysis
analyzeMappingUnchecked(const ConvLayer &layer,
                        const AcceleratorConfig &cfg,
                        const Mapping &mapping,
                        const AnalysisOptions &options)
{
    const MappingShapes shapes = deriveShapes(layer, cfg, mapping);
    const NestSet nests = buildNests(layer, cfg, mapping, shapes);

    // C3P buffer analyses.  W-L1 buffers of the pw cores sharing one
    // weight stream are merged into one pool (paper section III-A.2).
    const int64_t wl1_capacity =
        cfg.core.wl1Bytes *
        (options.wl1Pooling ? mapping.chipSplit.parts() : 1);
    const ReuseResult wl1 = analyzeBuffer(nests.perCore, Tensor::Weights,
                                          layer, wl1_capacity);
    const ReuseResult al1 = analyzeBuffer(
        nests.perCore, Tensor::Activations, layer, cfg.core.al1Bytes);
    const ReuseResult al2 =
        analyzeBuffer(nests.perChiplet, Tensor::Activations, layer,
                      cfg.chiplet.al2Bytes);
    return composeAccessAnalysis(layer, cfg, mapping, options, shapes,
                                 wl1, al1, al2);
}

AccessAnalysis
composeAccessAnalysis(const ConvLayer &layer,
                      const AcceleratorConfig &cfg,
                      const Mapping &mapping,
                      const AnalysisOptions &options,
                      const MappingShapes &shapes, const ReuseResult &wl1,
                      const ReuseResult &al1, const ReuseResult &al2)
{
    AccessAnalysis out;
    composeAccessAnalysisInto(layer, cfg, mapping, options, shapes, wl1,
                              al1, al2, out);
    return out;
}

void
composeAccessAnalysisInto(const ConvLayer &layer,
                          const AcceleratorConfig &cfg,
                          const Mapping &mapping,
                          const AnalysisOptions &options,
                          const MappingShapes &shapes,
                          const ReuseResult &wl1, const ReuseResult &al1,
                          const ReuseResult &al2, AccessAnalysis &out)
{
    // Reset the POD parts; the ReuseResult assignments below reuse any
    // criticalPoints capacity @p out already carries (the evaluation
    // hot loops feed the same AccessAnalysis back in every call).
    out.counts = AccessCounts{};
    out.shapes = shapes;
    out.wl1 = wl1;
    out.al1 = al1;
    out.al2 = al2;
    const MappingShapes &s = out.shapes;

    // The parallel-unit counts are promoted to int64 up front so every
    // product below is 64-bit from the first multiplication; batch>1
    // transformer shapes push the int32 boundary otherwise.
    const int64_t np = cfg.package.chiplets;
    const int64_t nc = cfg.chiplet.cores;
    const int64_t cw = mapping.chipChannelWays;
    const int64_t pw = mapping.chipSplit.parts();
    const int p =
        std::min<int>(cfg.core.vectorSize, layer.ciPerGroup());

    AccessCounts &c = out.counts;
    const bool acts_shared = options.rotationSharing &&
        mapping.pkgSpatial == PackagePartition::Channel && np > 1;
    const bool weights_shared = options.rotationSharing &&
        mapping.pkgSpatial == PackagePartition::Plane && np > 1;

    // --- weights: DRAM -> (ring) -> W-L1 ----------------------------
    // cw distinct weight streams per chiplet; each stream fills its
    // merged W-L1 pool once per analysis.
    const int64_t w_streams = options.wl1Pooling ? cw : nc;
    const int64_t w_chip_bits = out.wl1.fillBytes * w_streams * 8;
    if (weights_shared) {
        c.dramReadWeightBits += w_chip_bits;
        c.d2dBits += w_chip_bits * (np - 1);
    } else {
        c.dramReadWeightBits += w_chip_bits * np;
    }
    c.wl1WriteBits += w_chip_bits * np;
    // PE-side reads: each core tile consumes its weights once; a
    // merged pool is read once and broadcast to its pw PE arrays.
    const int64_t w_per_tile =
        static_cast<int64_t>(s.coreTile.co) * layer.ciPerGroup() *
        layer.kh * layer.kw;
    c.wl1ReadBits +=
        s.coreTilesPerChiplet() * cw * w_per_tile * 8 * np;

    // --- activations: DRAM -> (ring) -> A-L2 -> A-L1 -> PE ----------
    const int64_t a2_chip_bits = out.al2.fillBytes * 8;
    if (acts_shared) {
        c.dramReadActBits += a2_chip_bits;
        c.d2dBits += a2_chip_bits * (np - 1);
    } else {
        c.dramReadActBits += a2_chip_bits * np;
    }
    c.al2WriteBits += a2_chip_bits * np;
    // pw distinct planar streams per chiplet; the cw cores of a
    // channel group receive the same stream via bus multicast.
    c.al2ReadBits +=
        out.al1.fillBytes * (options.al2Multicast ? pw : nc) * 8 * np;
    c.al1WriteBits += out.al1.fillBytes * nc * 8 * np;

    const int64_t macs = layer.macs();
    c.macOps = macs;
    // Post-MAC element-wise passes (softmax on attention scores) run
    // on the vector ALU once per output element per pass.
    c.vectorOps = layer.vectorOps();
    // Active lanes share one P-wide activation vector per cycle.
    c.al1ReadBits += macs * 8 / std::max(1, s.coreTile.co);

    // --- outputs: O-L1 (RF) -> O-L2 -> DRAM --------------------------
    // One 24-bit accumulator read-modify-write per vector-MAC result.
    c.ol1RmwBits += ceilDiv(macs, p) * 24;
    c.ol1ReadBits += layer.outputVolume() * 24; // requantisation drain
    c.ol2WriteBits += layer.outputVolume() * 8;
    c.ol2ReadBits += layer.outputVolume() * 8;
    c.dramWriteBits += layer.outputVolume() * 8;
    c.ol2Bytes = s.chipletTile.volume();

    // --- utilisation --------------------------------------------------
    out.laneUtilization =
        static_cast<double>(s.coreTile.co) / cfg.core.lanes;
    // Depthwise layers reduce over the kernel window instead of the
    // input channels, so the vector slots fill with kernel taps.
    const int64_t vec_work = layer.isDepthwise()
                                 ? static_cast<int64_t>(layer.kh) *
                                       layer.kw
                                 : layer.ciPerGroup();
    out.vectorUtilization =
        static_cast<double>(vec_work) /
        static_cast<double>(ceilDiv(vec_work, cfg.core.vectorSize) *
                            cfg.core.vectorSize);
}

} // namespace nnbaton
