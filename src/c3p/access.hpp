/**
 * @file
 * Whole-layer, whole-package memory-access accounting built on the
 * C3P buffer analysis (DESIGN.md section 4).
 *
 * Produces bit counts per hardware component; cost/energy.hpp turns
 * them into picojoules with the technology model.  Rotation sharing
 * (paper figure 3) is applied here: the tensor shared by the package
 * spatial primitive (activations for C-type, weights for P-type) is
 * loaded from DRAM once and forwarded (N_P - 1) times over the ring.
 */

#ifndef NNBATON_C3P_ACCESS_HPP
#define NNBATON_C3P_ACCESS_HPP

#include <cstdint>
#include <string>

#include "arch/config.hpp"
#include "c3p/analysis.hpp"
#include "dataflow/mapping.hpp"
#include "nn/layer.hpp"

namespace nnbaton {

/** Bit counts per component for one layer on the whole package. */
struct AccessCounts
{
    int64_t dramReadActBits = 0;    //!< DRAM activation reads
    int64_t dramReadWeightBits = 0; //!< DRAM weight reads
    int64_t dramWriteBits = 0;      //!< DRAM writes (final outputs)
    int64_t d2dBits = 0;       //!< NoP traffic (rotation / psum hops)
    int64_t nocBits = 0;       //!< on-chip NoC hops (Simba psum flow)
    int64_t al2ReadBits = 0;
    int64_t al2WriteBits = 0;
    int64_t al1ReadBits = 0;
    int64_t al1WriteBits = 0;
    int64_t wl1ReadBits = 0;
    int64_t wl1WriteBits = 0;
    int64_t ol1RmwBits = 0;  //!< accumulator read-modify-writes
    int64_t ol1ReadBits = 0; //!< final-result drain reads
    int64_t ol2ReadBits = 0;
    int64_t ol2WriteBits = 0;
    int64_t macOps = 0;      //!< effective MAC operations
    int64_t vectorOps = 0;   //!< post-MAC vector-ALU passes (softmax)

    int64_t ol2Bytes = 0; //!< derived O-L2 size (single chiplet workload)

    /** Total DRAM reads in bits. */
    int64_t dramReadBits() const
    {
        return dramReadActBits + dramReadWeightBits;
    }

    /** Total DRAM traffic in bits. */
    int64_t dramBits() const { return dramReadBits() + dramWriteBits; }

    std::string toString() const;
};

/** Detail retained for reporting and the runtime simulator. */
struct AccessAnalysis
{
    AccessCounts counts;
    MappingShapes shapes;
    ReuseResult wl1;         //!< per-core W-L1 fill analysis
    ReuseResult al1;         //!< per-core A-L1 fill analysis
    ReuseResult al2;         //!< per-chiplet A-L2 fill analysis
    double laneUtilization = 1.0;   //!< fraction of L lanes active
    double vectorUtilization = 1.0; //!< fraction of P slots active
};

/**
 * Ablation switches for the architecture's dataflow mechanisms
 * (paper section III); all enabled reproduces the proposed design.
 */
struct AnalysisOptions
{
    /** Ring rotation of the package-shared tensor (figure 3); off =
     *  every chiplet loads the shared tensor from DRAM itself. */
    bool rotationSharing = true;

    /** W-L1 buffer pooling: cores needing the same weights merge
     *  their W-L1 into one broadcast group (section III-A.2); off =
     *  private W-L1 per core with duplicated fills. */
    bool wl1Pooling = true;

    /** Central-bus multicast from A-L2 to the cores of a channel
     *  group; off = one unicast read per core. */
    bool al2Multicast = true;
};

/**
 * Run the full C3P accounting for a (layer, config, mapping) triple.
 * The mapping must pass checkMapping(); this throws
 * StatusError(InvalidArgument) otherwise.
 */
AccessAnalysis analyzeMapping(const ConvLayer &layer,
                              const AcceleratorConfig &cfg,
                              const Mapping &mapping,
                              const AnalysisOptions &options = {});

/**
 * analyzeMapping() without the legality gate: the caller vouches that
 * @p mapping passes checkMapping().  The mapping search uses this on
 * enumerated candidates (legal by construction) where the accounting
 * runs once per candidate and the redundant check is measurable
 * (mapper/bound.hpp's refined bound).
 */
AccessAnalysis analyzeMappingUnchecked(const ConvLayer &layer,
                                       const AcceleratorConfig &cfg,
                                       const Mapping &mapping,
                                       const AnalysisOptions &options = {});

/**
 * The closed-form composition step of the accounting: turn the three
 * buffer reuse analyses plus the derived shapes into whole-package
 * access counts.  analyzeMappingUnchecked() and the incremental
 * evaluator (c3p/incremental.hpp) both call this one function, so the
 * incremental path is bit-identical to the full one by construction —
 * the only inputs are the (integer-exact) ReuseResults and shapes.
 */
AccessAnalysis composeAccessAnalysis(const ConvLayer &layer,
                                     const AcceleratorConfig &cfg,
                                     const Mapping &mapping,
                                     const AnalysisOptions &options,
                                     const MappingShapes &shapes,
                                     const ReuseResult &wl1,
                                     const ReuseResult &al1,
                                     const ReuseResult &al2);

/**
 * composeAccessAnalysis() writing into caller-owned storage.  The
 * evaluation hot loops feed the same @p out back in every call so the
 * criticalPoints vectors keep their capacity; all scalar fields are
 * fully (re)assigned, so no stale state survives.
 */
void composeAccessAnalysisInto(const ConvLayer &layer,
                               const AcceleratorConfig &cfg,
                               const Mapping &mapping,
                               const AnalysisOptions &options,
                               const MappingShapes &shapes,
                               const ReuseResult &wl1,
                               const ReuseResult &al1,
                               const ReuseResult &al2,
                               AccessAnalysis &out);

} // namespace nnbaton

#endif // NNBATON_C3P_ACCESS_HPP
