/**
 * @file
 * Delta-aware incremental C3P evaluation (ROADMAP item 5).
 *
 * The mapping search spends nearly all its time re-deriving the full
 * footprint/access algebra for candidates that differ from their
 * enumeration neighbour in a single tile factor or loop position.  The
 * closed-form accounting factors cleanly: the expensive inputs are the
 * three buffer reuse analyses (W-L1, A-L1, A-L2), which depend only on
 * a (loop nest, capacity) pair, and the nests themselves depend only
 * on the derived shapes and the two loop orders.  An
 * IncrementalAnalyzer therefore carries the previous candidate's
 * per-level terms and, for a covered structured diff, rebuilds the
 * nests allocation-free and serves each buffer term either from a
 * small hash-guarded exact-match nest memo or with the linear-time
 * scan (analyzeBufferFast); the final composition runs through the
 * same composeAccessAnalysis() as the full path, so results are
 * bit-identical by construction.  Uncovered diffs fall back to
 * re-deriving the shapes and nests from scratch; the nest memo stays
 * valid across any diff because it keys on the exact (nest, capacity)
 * pair, never on the classification.
 *
 * Covered diffs (docs/architecture.md, "Incremental evaluation"):
 *  - one chiplet-tile factor changed (optionally together with loop
 *    orders — the enumeration-wrap neighbour);
 *  - a loop-order swap only (the derived shapes are carried over:
 *    deriveShapes() never reads the orders);
 *  - one spatial-split group changed (package primitive, chiplet
 *    primitive, or the core-tile plane).
 *
 * Cross-check mode (debug/CI) validates every incremental result
 * against the independent full analysis and aborts on any divergence;
 * enable per analyzer with setCrossCheck() or process-wide with the
 * NNBATON_INCREMENTAL_CHECK environment variable.
 */

#ifndef NNBATON_C3P_INCREMENTAL_HPP
#define NNBATON_C3P_INCREMENTAL_HPP

#include <cstdint>
#include <vector>

#include "arch/config.hpp"
#include "c3p/access.hpp"
#include "dataflow/loopnest.hpp"
#include "dataflow/mapping.hpp"
#include "nn/layer.hpp"

namespace nnbaton {

/** The structured diff connecting a candidate to its predecessor. */
enum class MappingDelta
{
    Prime,        //!< no predecessor yet (first evaluation)
    TileFactor,   //!< exactly one chiplet-tile factor changed
    TileAndOrder, //!< one tile factor plus a loop-order change (the
                  //!< enumeration-wrap neighbour)
    LoopOrder,    //!< only pkgOrder / chipOrder changed
    SpatialSplit, //!< one spatial-split group changed
    Uncovered,    //!< anything wider; full fallback
};

const char *toString(MappingDelta d);

/**
 * Classify the diff between two mappings.  The classification only
 * gates which cached terms the analyzer tries to reuse — correctness
 * never depends on it (the memo keys on exact nest equality).
 */
MappingDelta classifyMappingDelta(const Mapping &prev,
                                  const Mapping &next);

/**
 * Evaluator-local work counters.  Deliberately NOT part of
 * SearchStats: hit/fallback splits depend on the candidate visit
 * order, which differs between serial and parallel schedules, and
 * SearchStats must stay bit-identical across thread counts.  These
 * are mirrored into the obs metrics registry instead.
 */
struct IncrementalStats
{
    int64_t evaluations = 0; //!< total analyze() calls
    int64_t deltaHits = 0;   //!< served through the incremental path
    int64_t fallbacks = 0;   //!< uncovered diffs; shapes re-derived
    int64_t shapeReuses = 0; //!< derived shapes carried over
    int64_t nestReuses = 0;  //!< buffer terms served from the memo
    int64_t nestScans = 0;   //!< buffer terms recomputed (fast scan)
    int64_t crossChecks = 0; //!< full-analysis validations performed

    double deltaHitRatio() const
    {
        return evaluations > 0
                   ? static_cast<double>(deltaHits) / evaluations
                   : 0.0;
    }

    double fallbackRatio() const
    {
        return evaluations > 0
                   ? static_cast<double>(fallbacks) / evaluations
                   : 0.0;
    }

    IncrementalStats &operator+=(const IncrementalStats &o)
    {
        evaluations += o.evaluations;
        deltaHits += o.deltaHits;
        fallbacks += o.fallbacks;
        shapeReuses += o.shapeReuses;
        nestReuses += o.nestReuses;
        nestScans += o.nestScans;
        crossChecks += o.crossChecks;
        return *this;
    }
};

/**
 * Stateful per-(layer, config) incremental evaluator.  Feed it a
 * candidate stream via analyze(); consecutive enumeration neighbours
 * take the delta path, anything else falls back to the full analysis.
 * Mappings must be legal (checkMapping-clean), exactly like
 * analyzeMappingUnchecked().  Not thread-safe; use one analyzer per
 * serial evaluation lane.
 */
class IncrementalAnalyzer
{
  public:
    IncrementalAnalyzer(const ConvLayer &layer,
                        const AcceleratorConfig &cfg,
                        const AnalysisOptions &options = {});

    /** Evaluate one candidate, reusing the predecessor's terms when
     *  the diff is covered.  Bit-identical to analyzeMapping().  The
     *  returned reference points at analyzer-owned storage and is
     *  valid until the next analyze() call. */
    const AccessAnalysis &analyze(const Mapping &mapping);

    /** analyze() composing straight into caller-owned storage (the
     *  hot evaluation loops feed the same slot back in, so its vector
     *  capacity is reused and nothing is copied twice). */
    void analyzeInto(const Mapping &mapping, AccessAnalysis &out);

    const IncrementalStats &stats() const { return stats_; }

    /** Validate every result against the full analysis (CI mode);
     *  panics on the first divergence with the offending mapping. */
    void setCrossCheck(bool on) { crossCheck_ = on; }
    bool crossCheckEnabled() const { return crossCheck_; }

    /** True when NNBATON_INCREMENTAL_CHECK is set (and not "0"). */
    static bool crossCheckFromEnv();

  private:
    struct MemoEntry
    {
        uint64_t hash = 0;
        int64_t capacity = -1;
        LoopNest nest;
        ReuseResult result;
    };

    /** One buffer slot's exact-match memo: a small ring keyed on
     *  (nest, capacity), newest first.  Entries carry a 64-bit key
     *  hash so the scan compares one word per entry; a hash match is
     *  verified against the full key before it is trusted. */
    struct NestMemo
    {
        static constexpr size_t kEntries = 8;
        std::vector<MemoEntry> ring;
        size_t next = 0;

        const ReuseResult *find(uint64_t hash, const LoopNest &nest,
                                int64_t capacity) const;

        /** Hand out the next ring slot (evicting the oldest entry when
         *  the ring is full) so the caller can fill it in place; the
         *  slot's vectors keep their capacity across evictions. */
        MemoEntry &claim();
    };

    const ReuseResult &bufferTerm(NestMemo &memo, const LoopNest &nest,
                                  uint64_t nest_hash, Tensor tensor,
                                  int64_t capacity);
    void validate(const Mapping &mapping,
                  const AccessAnalysis &incremental);

    const ConvLayer layer_;
    const AcceleratorConfig cfg_;
    const AnalysisOptions options_;
    bool crossCheck_ = false;

    bool hasPrev_ = false;
    Mapping prevMapping_;
    MappingShapes shapes_;
    NestSet nests_;
    NestMemo wl1Memo_, al1Memo_, al2Memo_;
    AccessAnalysis out_; //!< analyze() result storage (capacity reuse)
    IncrementalStats stats_;
};

/**
 * The free-function facade over IncrementalAnalyzer::analyze(): the
 * delta-aware counterpart of analyzeMapping(), with @p state carrying
 * the previous candidate's cached per-level terms.
 */
AccessAnalysis analyzeMappingIncremental(IncrementalAnalyzer &state,
                                         const Mapping &mapping);

/** Mirror evaluator-local counters into the obs metrics registry
 *  (c3p.incremental.*).  Observation only. */
void mirrorIncrementalMetrics(const IncrementalStats &stats);

} // namespace nnbaton

#endif // NNBATON_C3P_INCREMENTAL_HPP
