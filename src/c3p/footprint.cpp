#include "c3p/footprint.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace nnbaton {

const char *
toString(Tensor t)
{
    switch (t) {
      case Tensor::Weights:
        return "W";
      case Tensor::Activations:
        return "A";
      case Tensor::Outputs:
        return "O";
    }
    panic("bad Tensor");
}

int64_t
footprintBytes(Tensor tensor, const TileSpan &span, const ConvLayer &layer)
{
    switch (tensor) {
      case Tensor::Weights:
        // Depthwise kernels hold one input channel per output channel.
        return span.co * (layer.isDepthwise() ? 1 : span.ci) *
               span.kh * span.kw;
      case Tensor::Activations: {
        const int64_t rows =
            (span.ho - 1) * layer.stride + std::min<int64_t>(span.kh,
                                                             layer.kh);
        const int64_t cols =
            (span.wo - 1) * layer.stride + std::min<int64_t>(span.kw,
                                                             layer.kw);
        // Depthwise layers touch exactly the input channels of the
        // output-channel span (channel groups align with CO).
        const int64_t channels =
            layer.isDepthwise()
                ? std::min<int64_t>(layer.ci, span.co)
                : span.ci;
        return span.b * rows * cols * channels;
      }
      case Tensor::Outputs:
        return span.b * span.ho * span.wo * span.co;
    }
    panic("bad Tensor");
}

bool
isRelevant(Tensor tensor, Dim dim, const ConvLayer &layer)
{
    switch (tensor) {
      case Tensor::Weights:
        // Weights are shared across the batch: crossing a B loop does
        // not grow the weight footprint (the reuse the batch loop
        // placement exploits).
        return dim == Dim::OC || dim == Dim::IC || dim == Dim::KH ||
               dim == Dim::KW;
      case Tensor::Activations:
        // OC selects input channels in a depthwise layer.
        return dim != Dim::OC || layer.isDepthwise();
      case Tensor::Outputs:
        return dim == Dim::OH || dim == Dim::OW || dim == Dim::OC ||
               dim == Dim::B;
    }
    panic("bad Tensor");
}

} // namespace nnbaton
