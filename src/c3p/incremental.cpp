#include "c3p/incremental.hpp"

#include <cstdlib>

#include "common/logging.hpp"
#include "common/metrics.hpp"

namespace nnbaton {

namespace {

bool
sameSpan(const TileSpan &a, const TileSpan &b)
{
    return a.ho == b.ho && a.wo == b.wo && a.co == b.co &&
           a.ci == b.ci && a.kh == b.kh && a.kw == b.kw && a.b == b.b;
}

bool
sameNest(const LoopNest &a, const LoopNest &b)
{
    if (a.loops.size() != b.loops.size() || !sameSpan(a.atom, b.atom))
        return false;
    for (size_t i = 0; i < a.loops.size(); ++i) {
        if (a.loops[i].dim != b.loops[i].dim ||
            a.loops[i].trips != b.loops[i].trips)
            return false;
    }
    return true;
}

uint64_t
fnvStep(uint64_t h, uint64_t v)
{
    return (h ^ v) * 1099511628211ull; // FNV-1a, one multiply per word
}

/** Hash of the full nest identity (atom + loop sequence).  Computed
 *  once per nest per analyze(); the memo key mixes the capacity in on
 *  top.  A collision is harmless — find() verifies the full key. */
uint64_t
nestHash(const LoopNest &nest)
{
    uint64_t h = 14695981039346656037ull;
    h = fnvStep(h, static_cast<uint64_t>(nest.atom.ho));
    h = fnvStep(h, static_cast<uint64_t>(nest.atom.wo));
    h = fnvStep(h, static_cast<uint64_t>(nest.atom.co));
    h = fnvStep(h, static_cast<uint64_t>(nest.atom.ci));
    h = fnvStep(h, (static_cast<uint64_t>(nest.atom.kh) << 42) ^
                       (static_cast<uint64_t>(nest.atom.kw) << 21) ^
                       static_cast<uint64_t>(nest.atom.b));
    for (const Loop &l : nest.loops)
        h = fnvStep(h, (static_cast<uint64_t>(l.dim) << 56) ^
                           static_cast<uint64_t>(l.trips));
    return h;
}

bool
sameCounts(const AccessCounts &a, const AccessCounts &b)
{
    return a.dramReadActBits == b.dramReadActBits &&
           a.dramReadWeightBits == b.dramReadWeightBits &&
           a.dramWriteBits == b.dramWriteBits &&
           a.d2dBits == b.d2dBits && a.nocBits == b.nocBits &&
           a.al2ReadBits == b.al2ReadBits &&
           a.al2WriteBits == b.al2WriteBits &&
           a.al1ReadBits == b.al1ReadBits &&
           a.al1WriteBits == b.al1WriteBits &&
           a.wl1ReadBits == b.wl1ReadBits &&
           a.wl1WriteBits == b.wl1WriteBits &&
           a.ol1RmwBits == b.ol1RmwBits &&
           a.ol1ReadBits == b.ol1ReadBits &&
           a.ol2ReadBits == b.ol2ReadBits &&
           a.ol2WriteBits == b.ol2WriteBits && a.macOps == b.macOps &&
           a.vectorOps == b.vectorOps && a.ol2Bytes == b.ol2Bytes;
}

} // namespace

const char *
toString(MappingDelta d)
{
    switch (d) {
      case MappingDelta::Prime:
        return "prime";
      case MappingDelta::TileFactor:
        return "tile-factor";
      case MappingDelta::TileAndOrder:
        return "tile-and-order";
      case MappingDelta::LoopOrder:
        return "loop-order";
      case MappingDelta::SpatialSplit:
        return "spatial-split";
      case MappingDelta::Uncovered:
        return "uncovered";
    }
    panic("bad MappingDelta");
}

MappingDelta
classifyMappingDelta(const Mapping &prev, const Mapping &next)
{
    // Spatial groups: the three independent spatial-split decisions of
    // the mapping.  A covered spatial diff changes exactly one group
    // and nothing else.
    const bool pkg_group = prev.pkgSpatial != next.pkgSpatial ||
                           !(prev.pkgSplit == next.pkgSplit);
    const bool chip_group =
        prev.chipSpatial != next.chipSpatial ||
        prev.chipChannelWays != next.chipChannelWays ||
        !(prev.chipSplit == next.chipSplit);
    const bool core_group =
        prev.hoC != next.hoC || prev.woC != next.woC;
    const int spatial_changes = static_cast<int>(pkg_group) +
                                static_cast<int>(chip_group) +
                                static_cast<int>(core_group);

    const int tile_changes =
        static_cast<int>(prev.chipletTile.ho != next.chipletTile.ho) +
        static_cast<int>(prev.chipletTile.wo != next.chipletTile.wo) +
        static_cast<int>(prev.chipletTile.co != next.chipletTile.co);

    const bool order_changed = prev.pkgOrder != next.pkgOrder ||
                               prev.chipOrder != next.chipOrder;

    if (spatial_changes > 0) {
        if (spatial_changes == 1 && tile_changes == 0 && !order_changed)
            return MappingDelta::SpatialSplit;
        return MappingDelta::Uncovered;
    }
    if (tile_changes > 1)
        return MappingDelta::Uncovered;
    if (tile_changes == 1)
        return order_changed ? MappingDelta::TileAndOrder
                             : MappingDelta::TileFactor;
    // Order-only diff; an identical mapping lands here too (every
    // cached term is reusable either way).
    return MappingDelta::LoopOrder;
}

const ReuseResult *
IncrementalAnalyzer::NestMemo::find(uint64_t hash,
                                    const LoopNest &nest,
                                    int64_t capacity) const
{
    // Newest-first: enumeration streams revisit the most recent nests
    // (order flips alternate between two nests per tile point).  The
    // wrap is branch-based — a modulo per probe costs more than the
    // whole one-word hash compare.
    const size_t n = ring.size();
    size_t i = next;
    for (size_t k = 0; k < n; ++k) {
        i = (i == 0 ? n : i) - 1;
        if (ring[i].hash == hash && ring[i].capacity == capacity &&
            sameNest(ring[i].nest, nest))
            return &ring[i].result;
    }
    return nullptr;
}

IncrementalAnalyzer::MemoEntry &
IncrementalAnalyzer::NestMemo::claim()
{
    if (ring.size() < kEntries) {
        ring.reserve(kEntries);
        ring.emplace_back();
        next = ring.size() % kEntries;
        return ring.back();
    }
    MemoEntry &slot = ring[next];
    next = (next + 1) % kEntries;
    return slot;
}

IncrementalAnalyzer::IncrementalAnalyzer(const ConvLayer &layer,
                                         const AcceleratorConfig &cfg,
                                         const AnalysisOptions &options)
    : layer_(layer), cfg_(cfg), options_(options),
      crossCheck_(crossCheckFromEnv())
{
}

bool
IncrementalAnalyzer::crossCheckFromEnv()
{
    const char *v = std::getenv("NNBATON_INCREMENTAL_CHECK");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

const ReuseResult &
IncrementalAnalyzer::bufferTerm(NestMemo &memo, const LoopNest &nest,
                                uint64_t nest_hash, Tensor tensor,
                                int64_t capacity)
{
    const uint64_t hash =
        fnvStep(nest_hash, static_cast<uint64_t>(capacity));
    if (const ReuseResult *hit = memo.find(hash, nest, capacity)) {
        ++stats_.nestReuses;
        return *hit;
    }
    ++stats_.nestScans;
    MemoEntry &slot = memo.claim();
    slot.hash = hash;
    slot.capacity = capacity;
    slot.nest = nest;
    analyzeBufferFastInto(nest, tensor, layer_, capacity, slot.result);
    return slot.result;
}

void
IncrementalAnalyzer::validate(const Mapping &mapping,
                              const AccessAnalysis &incremental)
{
    ++stats_.crossChecks;
    const AccessAnalysis full =
        analyzeMapping(layer_, cfg_, mapping, options_);
    if (!sameCounts(incremental.counts, full.counts) ||
        incremental.wl1.fillBytes != full.wl1.fillBytes ||
        incremental.al1.fillBytes != full.al1.fillBytes ||
        incremental.al2.fillBytes != full.al2.fillBytes ||
        incremental.laneUtilization != full.laneUtilization ||
        incremental.vectorUtilization != full.vectorUtilization) {
        panic("incremental cross-check divergence on %s %s:\n"
              "  incremental: %s\n  full:        %s",
              layer_.name.c_str(), mapping.toString().c_str(),
              incremental.counts.toString().c_str(),
              full.counts.toString().c_str());
    }
}

const AccessAnalysis &
IncrementalAnalyzer::analyze(const Mapping &mapping)
{
    analyzeInto(mapping, out_);
    return out_;
}

void
IncrementalAnalyzer::analyzeInto(const Mapping &mapping,
                                 AccessAnalysis &out)
{
    ++stats_.evaluations;
    const MappingDelta delta =
        hasPrev_ ? classifyMappingDelta(prevMapping_, mapping)
                 : MappingDelta::Prime;

    // The classification only gates shape reuse.  Everything else —
    // the rebuilt nests, the memoised buffer terms, the shared
    // composition — is sound for any diff, because the memo keys on
    // the exact (nest, capacity) pair; a fallback just re-derives the
    // shapes from scratch instead of carrying them over.
    if (delta == MappingDelta::Prime ||
        delta == MappingDelta::Uncovered) {
        ++stats_.fallbacks;
        shapes_ = deriveShapes(layer_, cfg_, mapping);
    } else {
        ++stats_.deltaHits;
        if (delta == MappingDelta::LoopOrder) {
            // deriveShapes() never reads the loop orders, so the
            // derived shapes carry over verbatim.
            ++stats_.shapeReuses;
        } else {
            shapes_ = deriveShapes(layer_, cfg_, mapping);
        }
    }
    buildNestsInto(layer_, cfg_, mapping, shapes_, nests_);

    const int64_t wl1_capacity =
        cfg_.core.wl1Bytes *
        (options_.wl1Pooling ? mapping.chipSplit.parts() : 1);
    const uint64_t core_hash = nestHash(nests_.perCore);
    const uint64_t chiplet_hash = nestHash(nests_.perChiplet);
    const ReuseResult &wl1 =
        bufferTerm(wl1Memo_, nests_.perCore, core_hash,
                   Tensor::Weights, wl1_capacity);
    const ReuseResult &al1 =
        bufferTerm(al1Memo_, nests_.perCore, core_hash,
                   Tensor::Activations, cfg_.core.al1Bytes);
    const ReuseResult &al2 =
        bufferTerm(al2Memo_, nests_.perChiplet, chiplet_hash,
                   Tensor::Activations, cfg_.chiplet.al2Bytes);

    composeAccessAnalysisInto(layer_, cfg_, mapping, options_, shapes_,
                              wl1, al1, al2, out);
    prevMapping_ = mapping;
    hasPrev_ = true;
    if (crossCheck_)
        validate(mapping, out);
}

AccessAnalysis
analyzeMappingIncremental(IncrementalAnalyzer &state,
                          const Mapping &mapping)
{
    return state.analyze(mapping);
}

void
mirrorIncrementalMetrics(const IncrementalStats &stats)
{
    static obs::Counter &m_evals =
        obs::MetricsRegistry::instance().counter(
            "c3p.incremental.evaluations");
    static obs::Counter &m_hits =
        obs::MetricsRegistry::instance().counter(
            "c3p.incremental.delta_hits");
    static obs::Counter &m_fallbacks =
        obs::MetricsRegistry::instance().counter(
            "c3p.incremental.fallbacks");
    static obs::Counter &m_shape =
        obs::MetricsRegistry::instance().counter(
            "c3p.incremental.shape_reuses");
    static obs::Counter &m_nest =
        obs::MetricsRegistry::instance().counter(
            "c3p.incremental.nest_reuses");
    static obs::Counter &m_scan =
        obs::MetricsRegistry::instance().counter(
            "c3p.incremental.nest_scans");
    static obs::Counter &m_checks =
        obs::MetricsRegistry::instance().counter(
            "c3p.incremental.cross_checks");
    m_evals.add(stats.evaluations);
    m_hits.add(stats.deltaHits);
    m_fallbacks.add(stats.fallbacks);
    m_shape.add(stats.shapeReuses);
    m_nest.add(stats.nestReuses);
    m_scan.add(stats.nestScans);
    m_checks.add(stats.crossChecks);
}

} // namespace nnbaton
