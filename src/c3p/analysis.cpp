#include "c3p/analysis.hpp"

#include "common/logging.hpp"

namespace nnbaton {

ReuseResult
analyzeBuffer(const LoopNest &nest, Tensor tensor, const ConvLayer &layer,
              int64_t capacity_bytes)
{
    ReuseResult r;
    const size_t nb = nest.loops.size();
    r.intrinsicBytes = footprintBytes(tensor, nest.spanBelow(0), layer);

    // Record critical positions: boundaries above relevant loops,
    // innermost first, with the footprint (critical capacity) enclosed
    // below the *next outer* boundary once the loop is crossed.
    for (size_t i = nb; i-- > 0;) {
        if (isRelevant(tensor, nest.loops[i].dim, layer)) {
            r.criticalPoints.push_back(
                {i, footprintBytes(tensor, nest.spanBelow(i), layer)});
        }
    }

    // Retention scan: outermost boundary whose footprint fits.
    // Footprints are non-decreasing toward boundary 0, so scan from
    // the top down until one fits.
    size_t fit = nb;
    for (size_t b = 0; b <= nb; ++b) {
        if (footprintBytes(tensor, nest.spanBelow(b), layer) <=
            capacity_bytes) {
            fit = b;
            break;
        }
    }
    r.fitBoundary = fit;
    r.footprintAtFit = footprintBytes(tensor, nest.spanBelow(fit), layer);
    r.fillBytes = r.footprintAtFit * nest.tripsAbove(fit);
    return r;
}

} // namespace nnbaton
