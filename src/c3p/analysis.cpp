#include "c3p/analysis.hpp"

#include "common/logging.hpp"

namespace nnbaton {

ReuseResult
analyzeBuffer(const LoopNest &nest, Tensor tensor, const ConvLayer &layer,
              int64_t capacity_bytes)
{
    ReuseResult r;
    const size_t nb = nest.loops.size();
    r.intrinsicBytes = footprintBytes(tensor, nest.spanBelow(0), layer);

    // Record critical positions: boundaries above relevant loops,
    // innermost first, with the footprint (critical capacity) enclosed
    // below the *next outer* boundary once the loop is crossed.
    for (size_t i = nb; i-- > 0;) {
        if (isRelevant(tensor, nest.loops[i].dim, layer)) {
            r.criticalPoints.push_back(
                {i, footprintBytes(tensor, nest.spanBelow(i), layer)});
        }
    }

    // Retention scan: outermost boundary whose footprint fits.
    // Footprints are non-decreasing toward boundary 0, so scan from
    // the top down until one fits.
    size_t fit = nb;
    for (size_t b = 0; b <= nb; ++b) {
        if (footprintBytes(tensor, nest.spanBelow(b), layer) <=
            capacity_bytes) {
            fit = b;
            break;
        }
    }
    r.fitBoundary = fit;
    r.footprintAtFit = footprintBytes(tensor, nest.spanBelow(fit), layer);
    r.fillBytes = r.footprintAtFit * nest.tripsAbove(fit);
    return r;
}

ReuseResult
analyzeBufferFast(const LoopNest &nest, Tensor tensor,
                  const ConvLayer &layer, int64_t capacity_bytes)
{
    ReuseResult r;
    analyzeBufferFastInto(nest, tensor, layer, capacity_bytes, r);
    return r;
}

void
analyzeBufferFastInto(const LoopNest &nest, Tensor tensor,
                      const ConvLayer &layer, int64_t capacity_bytes,
                      ReuseResult &out)
{
    // The deepest nest buildNests() emits is B + 3 package-temporal +
    // 3 chiplet-temporal + IC + KH + KW + OH + OW = 12 loops; anything
    // deeper is a foreign nest and takes the reference path.
    constexpr size_t kMaxDepth = 31;
    const size_t nb = nest.loops.size();
    if (nb > kMaxDepth) {
        out = analyzeBuffer(nest, tensor, layer, capacity_bytes);
        return;
    }

    // One running span, grown outward from the atom; fp[b] is the
    // boundary-b footprint, exactly footprintBytes(spanBelow(b)).
    // Crossing an irrelevant loop never grows the footprint (the C3P
    // reuse-region property: footprintBytes() reads none of the dims
    // isRelevant() rejects), so those boundaries carry the inner value
    // over instead of recomputing it.
    int64_t fp[kMaxDepth + 1];
    uint32_t rel_mask = 0;
    size_t relevant = 0;
    TileSpan span = nest.atom;
    fp[nb] = footprintBytes(tensor, span, layer);
    for (size_t i = nb; i-- > 0;) {
        const Dim d = nest.loops[i].dim;
        span.at(d) *= nest.loops[i].trips;
        if (isRelevant(tensor, d, layer)) {
            rel_mask |= uint32_t{1} << i;
            ++relevant;
            fp[i] = footprintBytes(tensor, span, layer);
        } else {
            fp[i] = fp[i + 1];
        }
    }

    out.intrinsicBytes = fp[0];
    out.criticalPoints.clear();
    out.criticalPoints.reserve(relevant);
    for (size_t i = nb; i-- > 0;) {
        if (rel_mask & (uint32_t{1} << i))
            out.criticalPoints.push_back({i, fp[i]});
    }
    size_t fit = nb;
    for (size_t b = 0; b <= nb; ++b) {
        if (fp[b] <= capacity_bytes) {
            fit = b;
            break;
        }
    }
    out.fitBoundary = fit;
    out.footprintAtFit = fp[fit];
    out.fillBytes = out.footprintAtFit * nest.tripsAbove(fit);
}

} // namespace nnbaton
