#include "nn/model.hpp"

#include <algorithm>
#include <sstream>

#include "common/status.hpp"

namespace nnbaton {

const ConvLayer &
Model::layer(const std::string &layer_name) const
{
    for (const auto &l : layers_) {
        if (l.name == layer_name)
            return l;
    }
    throwStatus(errNotFound("model %s: no layer named %s", name_.c_str(),
                            layer_name.c_str()));
}

void
Model::scaleBatch(int factor)
{
    if (factor <= 0) {
        throwStatus(errInvalidArgument(
            "model %s: non-positive batch factor %d", name_.c_str(),
            factor));
    }
    for (auto &l : layers_) {
        l.batch *= factor;
        l.validate();
    }
}

int64_t
Model::totalMacs() const
{
    int64_t total = 0;
    for (const auto &l : layers_)
        total += l.macs();
    return total;
}

int64_t
Model::totalWeights() const
{
    int64_t total = 0;
    for (const auto &l : layers_)
        total += l.weightVolume();
    return total;
}

int64_t
Model::peakActivations() const
{
    int64_t peak = 0;
    for (const auto &l : layers_)
        peak = std::max(peak, l.inputVolume() + l.outputVolume());
    return peak;
}

std::string
Model::toString() const
{
    std::ostringstream ss;
    ss << name_ << " @" << inputResolution_ << "x" << inputResolution_
       << " (" << layers_.size() << " layers)\n";
    for (const auto &l : layers_)
        ss << "  " << l.toString() << "\n";
    return ss.str();
}

RepresentativeLayers
representativeLayers(int resolution)
{
    Model vgg = makeVgg16(resolution);
    Model resnet = makeResNet50(resolution);
    RepresentativeLayers out{
        vgg.layer("conv1"),
        vgg.layer("conv12"),
        resnet.layer("conv1"),
        resnet.layer("res2a_branch2a"),
        resnet.layer("res2a_branch2b"),
    };
    return out;
}

} // namespace nnbaton
