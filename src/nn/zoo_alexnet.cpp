/**
 * @file
 * AlexNet layer table (Krizhevsky et al., NeurIPS 2012).
 *
 * Spatial extents follow the exact stride/pooling chain: conv1 is
 * 11x11/4 (pad 2), conv2 is 5x5 (pad 2) after 3x3/2 max-pool, conv3-5
 * are 3x3 (pad 1) after another 3x3/2 max-pool.  FC layers use the
 * canonical 224-input classifier head (reorganised as point-wise
 * layers) at both resolutions.
 */

#include "common/status.hpp"
#include "nn/model.hpp"

namespace nnbaton {

namespace {

/** Output extent of a k-size, stride-s, pad-p window over n inputs. */
int
windowOut(int n, int k, int s, int p)
{
    return (n + 2 * p - k) / s + 1;
}

} // namespace

Model
makeAlexNet(int resolution)
{
    if (resolution < 64) {
        throwStatus(errInvalidArgument(
            "AlexNet resolution too small: %d", resolution));
    }

    Model m("AlexNet", resolution);

    const int s1 = windowOut(resolution, 11, 4, 2); // conv1 output
    const int p1 = windowOut(s1, 3, 2, 0);          // pool1 output
    const int p2 = windowOut(p1, 3, 2, 0);          // pool2 output

    m.addLayer(makeConv("conv1", s1, s1, 96, 3, 11, 11, 4));
    m.addLayer(makeConv("conv2", p1, p1, 256, 96, 5, 5, 1));
    m.addLayer(makeConv("conv3", p2, p2, 384, 256, 3, 3, 1));
    m.addLayer(makeConv("conv4", p2, p2, 384, 384, 3, 3, 1));
    m.addLayer(makeConv("conv5", p2, p2, 256, 384, 3, 3, 1));

    m.addLayer(makeFullyConnected("fc6", 4096, 256 * 6 * 6));
    m.addLayer(makeFullyConnected("fc7", 4096, 4096));
    m.addLayer(makeFullyConnected("fc8", 1000, 4096));
    return m;
}

} // namespace nnbaton
