/**
 * @file
 * DNN layer workload description (paper section II-A, figure 1).
 *
 * A layer workload is defined output-centrically: a complete output cube
 * of HO x WO x CO elements, consuming a 3D input cube (HI x WI x CI) and
 * a 4D weight tensor (KH x KW x CI x CO).  A batch dimension multiplies
 * the activation and output tensors (weights are shared across the
 * batch); native GEMM workloads map M x N x K onto the same cube with
 * M factored over the output plane.
 */

#ifndef NNBATON_NN_LAYER_HPP
#define NNBATON_NN_LAYER_HPP

#include <cstdint>
#include <string>

namespace nnbaton {

/** Broad layer categories used by the case studies (section VI-A). */
enum class LayerKind
{
    ActivationIntensive, //!< activations dominate (e.g. VGG-16 conv1)
    WeightIntensive,     //!< weights dominate (e.g. VGG-16 conv12)
    LargeKernel,         //!< 7x7-class kernels (e.g. ResNet-50 conv1)
    PointWise,           //!< 1x1 kernels (and reorganised FC layers)
    Common,              //!< everything else (typical 3x3)
};

/**
 * Workload family of a layer.  A Gemm layer is lowered onto the conv
 * cube (kh = kw = 1, stride 1) with M factored into ho x wo, but keeps
 * its native M x N x K extents for display and serialisation.
 */
enum class LayerOp
{
    Conv, //!< convolution (or FC reorganised as 1x1 point-wise)
    Gemm, //!< native matrix multiply, M x N x K
};

/**
 * A layer workload.
 *
 * All extents are in elements.  Fully-connected layers are reorganised
 * into point-wise (1x1) convolutions for the evaluation, as in the
 * paper (section VI-A.2); GEMM layers keep a 2D spatial plane by
 * factoring M into ho x wo (exact: ho * wo == M).
 */
struct ConvLayer
{
    std::string name; //!< layer name, e.g. "conv1" or "enc0_qkv"
    int ho = 0;       //!< output height
    int wo = 0;       //!< output width
    int co = 0;       //!< output channels
    int ci = 0;       //!< input channels
    int kh = 0;       //!< kernel height
    int kw = 0;       //!< kernel width
    int stride = 1;   //!< convolution stride (same in H and W)
    int groups = 1;   //!< channel groups (1 = dense, ci = depthwise)
    int batch = 1;    //!< batch size (weights shared across samples)

    LayerOp op = LayerOp::Conv; //!< workload family
    int gemmM = 0; //!< native GEMM rows (op == Gemm; ho * wo == gemmM)
    int gemmN = 0; //!< native GEMM columns (== co)
    int gemmK = 0; //!< native GEMM reduction depth (== ci)

    /** Vector-ALU passes over each output element after the MACs
     *  (e.g. 3 for a softmax: max, exp-sum, divide).  Zero for plain
     *  conv/GEMM layers. */
    int postOps = 0;

    /** Input-cube height needed to produce the full output (padded). */
    int hi() const { return (ho - 1) * stride + kh; }

    /** Input-cube width needed to produce the full output (padded). */
    int wi() const { return (wo - 1) * stride + kw; }

    /** Input channels each output channel consumes. */
    int ciPerGroup() const { return ci / groups; }

    /** True for depthwise convolutions (one input channel per output). */
    bool isDepthwise() const { return groups > 1 && groups == ci; }

    /** Total multiply-accumulate operations for the layer (all
     *  samples of the batch). */
    int64_t macs() const
    {
        return static_cast<int64_t>(batch) * ho * wo * co *
               ciPerGroup() * kh * kw;
    }

    /** Output tensor volume in elements (all samples). */
    int64_t outputVolume() const
    {
        return static_cast<int64_t>(batch) * ho * wo * co;
    }

    /** Weight tensor volume in elements (shared across the batch). */
    int64_t weightVolume() const
    {
        return static_cast<int64_t>(kh) * kw * ciPerGroup() * co;
    }

    /** Input tensor volume in elements (full padded footprint, all
     *  samples). */
    int64_t inputVolume() const
    {
        return static_cast<int64_t>(batch) * hi() * wi() * ci;
    }

    /** Post-MAC vector operations for the layer (all samples). */
    int64_t vectorOps() const { return outputVolume() * postOps; }

    /** True for 1x1 kernels. */
    bool isPointWise() const { return kh == 1 && kw == 1; }

    /**
     * Classify the layer per the paper's taxonomy: large-kernel first,
     * then point-wise, then activation- vs weight-intensive by tensor
     * volume, with near-balanced 3x3 layers reported as Common.
     */
    LayerKind kind() const;

    /** Validate extents; throws StatusError(InvalidArgument) on
     *  nonsensical shapes. */
    void validate() const;

    /** Human-readable one-line summary. */
    std::string toString() const;
};

/**
 * Input-footprint extent along one spatial axis: producing @p out
 * output elements with kernel @p k and stride @p s consumes
 * (out - 1) * s + k input elements.
 */
constexpr int
inputExtent(int out, int k, int s)
{
    return out > 0 ? (out - 1) * s + k : 0;
}

/**
 * Build a convolution layer; FC layers use makeFullyConnected().
 */
ConvLayer makeConv(std::string name, int ho, int wo, int co, int ci,
                   int kh, int kw, int stride);

/**
 * Build a depthwise convolution (groups == ci == co), the MobileNet
 * building block.  Only dense (groups == 1) and depthwise layers are
 * supported by the analytical framework.
 */
ConvLayer makeDepthwiseConv(std::string name, int ho, int wo,
                            int channels, int k, int stride);

/** Depthwise convolution with a non-square (kh x kw) kernel. */
ConvLayer makeDepthwiseConv(std::string name, int ho, int wo,
                            int channels, int kh, int kw, int stride);

/**
 * Build a fully-connected layer reorganised as a 1x1 point-wise
 * convolution over a 1x1 spatial map (paper section VI-A.2).
 */
ConvLayer makeFullyConnected(std::string name, int out_features,
                             int in_features);

/**
 * Build a native GEMM workload of M x N x K per sample.  M is factored
 * into the most balanced exact ho x wo plane (ho the largest divisor
 * of M not above sqrt(M)), which keeps a 2D spatial plane for the
 * planar partitioning primitives; N maps to output channels and K to
 * input channels with a 1x1 kernel.  @p post_ops vector passes per
 * output element account for fused element-wise work (softmax).
 */
ConvLayer makeGemm(std::string name, int m, int n, int k, int batch = 1,
                   int post_ops = 0);

} // namespace nnbaton

#endif // NNBATON_NN_LAYER_HPP
