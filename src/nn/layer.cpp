#include "nn/layer.hpp"

#include "common/logging.hpp"
#include "common/status.hpp"

namespace nnbaton {

LayerKind
ConvLayer::kind() const
{
    if (kh >= 5 || kw >= 5)
        return LayerKind::LargeKernel;
    if (isPointWise())
        return LayerKind::PointWise;
    int64_t acts = static_cast<int64_t>(hi()) * wi() * ci;
    int64_t wts = weightVolume();
    // A layer is "common" when neither tensor dominates strongly; the
    // asymmetric thresholds follow the paper's examples (res2a_
    // branch2b with ~6x more activations than weights is "common").
    if (acts > 8 * wts)
        return LayerKind::ActivationIntensive;
    if (wts > 4 * acts)
        return LayerKind::WeightIntensive;
    return LayerKind::Common;
}

void
ConvLayer::validate() const
{
    if (ho <= 0 || wo <= 0 || co <= 0 || ci <= 0) {
        throwStatus(errInvalidArgument(
            "layer %s: non-positive extent (ho=%d wo=%d co=%d ci=%d)",
            name.c_str(), ho, wo, co, ci));
    }
    if (kh <= 0 || kw <= 0 || stride <= 0) {
        throwStatus(errInvalidArgument(
            "layer %s: non-positive kernel/stride (kh=%d kw=%d s=%d)",
            name.c_str(), kh, kw, stride));
    }
    if (batch <= 0) {
        throwStatus(errInvalidArgument(
            "layer %s: non-positive batch %d", name.c_str(), batch));
    }
    if (postOps < 0) {
        throwStatus(errInvalidArgument(
            "layer %s: negative postOps %d", name.c_str(), postOps));
    }
    if (groups != 1 && !(groups == ci && groups == co)) {
        throwStatus(errInvalidArgument(
            "layer %s: only dense (groups=1) and depthwise "
            "(groups=ci=co) convolutions are supported, got "
            "groups=%d ci=%d co=%d",
            name.c_str(), groups, ci, co));
    }
    if (op == LayerOp::Gemm) {
        if (static_cast<int64_t>(ho) * wo != gemmM || gemmN != co ||
            gemmK != ci || kh != 1 || kw != 1 || stride != 1 ||
            groups != 1) {
            throwStatus(errInvalidArgument(
                "layer %s: inconsistent GEMM lowering "
                "(M=%d N=%d K=%d vs ho=%d wo=%d co=%d ci=%d)",
                name.c_str(), gemmM, gemmN, gemmK, ho, wo, co, ci));
        }
    }
}

std::string
ConvLayer::toString() const
{
    if (op == LayerOp::Gemm) {
        return strprintf("%s: gemm %dx%dx%d (plane %dx%d), batch %d%s",
                         name.c_str(), gemmM, gemmN, gemmK, ho, wo,
                         batch,
                         postOps > 0
                             ? strprintf(", postops %d", postOps).c_str()
                             : "");
    }
    return strprintf("%s: out %dx%dx%d, ci %d, k %dx%d, s %d%s%s%s",
                     name.c_str(), ho, wo, co, ci, kh, kw, stride,
                     isDepthwise() ? ", depthwise" : "",
                     batch > 1 ? strprintf(", batch %d", batch).c_str()
                               : "",
                     postOps > 0
                         ? strprintf(", postops %d", postOps).c_str()
                         : "");
}

ConvLayer
makeConv(std::string name, int ho, int wo, int co, int ci, int kh, int kw,
         int stride)
{
    ConvLayer l;
    l.name = std::move(name);
    l.ho = ho;
    l.wo = wo;
    l.co = co;
    l.ci = ci;
    l.kh = kh;
    l.kw = kw;
    l.stride = stride;
    l.validate();
    return l;
}

ConvLayer
makeDepthwiseConv(std::string name, int ho, int wo, int channels, int k,
                  int stride)
{
    return makeDepthwiseConv(std::move(name), ho, wo, channels, k, k,
                             stride);
}

ConvLayer
makeDepthwiseConv(std::string name, int ho, int wo, int channels,
                  int kh, int kw, int stride)
{
    ConvLayer l;
    l.name = std::move(name);
    l.ho = ho;
    l.wo = wo;
    l.co = channels;
    l.ci = channels;
    l.kh = kh;
    l.kw = kw;
    l.stride = stride;
    l.groups = channels;
    l.validate();
    return l;
}

ConvLayer
makeFullyConnected(std::string name, int out_features, int in_features)
{
    return makeConv(std::move(name), 1, 1, out_features, in_features, 1, 1,
                    1);
}

ConvLayer
makeGemm(std::string name, int m, int n, int k, int batch, int post_ops)
{
    if (m <= 0) {
        throwStatus(errInvalidArgument(
            "layer %s: non-positive GEMM M %d", name.c_str(), m));
    }
    // Most balanced exact factorisation: the largest divisor of M not
    // above sqrt(M) becomes ho (1 x M for prime M).  Exactness keeps
    // the lowered cube's MAC and output counts identical to the native
    // M x N x K workload.
    int ho = 1;
    for (int d = 1; static_cast<int64_t>(d) * d <= m; ++d) {
        if (m % d == 0)
            ho = d;
    }
    ConvLayer l;
    l.name = std::move(name);
    l.ho = ho;
    l.wo = m / ho;
    l.co = n;
    l.ci = k;
    l.kh = 1;
    l.kw = 1;
    l.stride = 1;
    l.batch = batch;
    l.op = LayerOp::Gemm;
    l.gemmM = m;
    l.gemmN = n;
    l.gemmK = k;
    l.postOps = post_ops;
    l.validate();
    return l;
}

} // namespace nnbaton
