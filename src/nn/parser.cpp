#include "nn/parser.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/logging.hpp"

namespace nnbaton {

namespace {

/** Split a line into whitespace-separated tokens. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream ss(line);
    std::string tok;
    while (ss >> tok)
        tokens.push_back(tok);
    return tokens;
}

/** Parse a strictly positive integer; returns false on failure. */
bool
parsePositive(const std::string &tok, int &out)
{
    try {
        size_t pos = 0;
        const long v = std::stol(tok, &pos);
        if (pos != tok.size() || v <= 0 || v > (1 << 30))
            return false;
        out = static_cast<int>(v);
        return true;
    } catch (...) {
        return false;
    }
}

std::string
lineError(int line, const std::string &message)
{
    return "line " + std::to_string(line) + ": " + message;
}

} // namespace

ParseResult
parseModel(std::istream &in)
{
    ParseResult result;
    std::optional<Model> model;
    std::string line;
    int line_no = 0;
    int batch = 1; // current batch; applies to subsequent layers

    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments.
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        const auto tokens = tokenize(line);
        if (tokens.empty())
            continue;

        const std::string &kind = tokens[0];
        if (kind == "model") {
            if (model) {
                result.error =
                    lineError(line_no, "duplicate 'model' line");
                return result;
            }
            int resolution = 0;
            if (tokens.size() != 3 ||
                !parsePositive(tokens[2], resolution)) {
                result.error = lineError(
                    line_no, "expected: model <name> <resolution>");
                return result;
            }
            model.emplace(tokens[1], resolution);
            continue;
        }

        if (!model) {
            result.error = lineError(
                line_no, "the 'model' line must come first");
            return result;
        }

        if (kind == "batch") {
            if (tokens.size() != 2 || !parsePositive(tokens[1], batch)) {
                result.error = lineError(line_no, "expected: batch <n>");
                return result;
            }
            continue;
        }

        if (kind == "conv") {
            int v[7];
            if (tokens.size() != 9) {
                result.error = lineError(
                    line_no, "expected: conv <name> <ho> <wo> <co> "
                             "<ci> <kh> <kw> <stride>");
                return result;
            }
            for (int i = 0; i < 7; ++i) {
                if (!parsePositive(tokens[2 + i], v[i])) {
                    result.error = lineError(
                        line_no, "bad integer '" + tokens[2 + i] + "'");
                    return result;
                }
            }
            model->addLayer(makeConv(tokens[1], v[0], v[1], v[2], v[3],
                                     v[4], v[5], v[6]));
        } else if (kind == "dwconv") {
            // Two arities: <kh> <kw> (canonical) and the legacy
            // square-kernel <k> form, kept for old model files.
            int v[6];
            const size_t n = tokens.size() - 2;
            if (n != 5 && n != 6) {
                result.error = lineError(
                    line_no, "expected: dwconv <name> <ho> <wo> "
                             "<channels> <kh> <kw> <stride> (or the "
                             "legacy square-kernel form with one <k>)");
                return result;
            }
            for (size_t i = 0; i < n; ++i) {
                if (!parsePositive(tokens[2 + i], v[i])) {
                    result.error = lineError(
                        line_no, "bad integer '" + tokens[2 + i] + "'");
                    return result;
                }
            }
            if (n == 6) {
                model->addLayer(makeDepthwiseConv(
                    tokens[1], v[0], v[1], v[2], v[3], v[4], v[5]));
            } else {
                model->addLayer(makeDepthwiseConv(tokens[1], v[0], v[1],
                                                  v[2], v[3], v[4]));
            }
        } else if (kind == "fc") {
            int v[2];
            if (tokens.size() != 4 || !parsePositive(tokens[2], v[0]) ||
                !parsePositive(tokens[3], v[1])) {
                result.error = lineError(
                    line_no,
                    "expected: fc <name> <out-features> <in-features>");
                return result;
            }
            model->addLayer(
                makeFullyConnected(tokens[1], v[0], v[1]));
        } else if (kind == "gemm") {
            int v[4] = {0, 0, 0, 0};
            const size_t n = tokens.size() - 2;
            if (n != 3 && n != 4) {
                result.error = lineError(
                    line_no,
                    "expected: gemm <name> <M> <N> <K> [postops]");
                return result;
            }
            for (size_t i = 0; i < n; ++i) {
                if (!parsePositive(tokens[2 + i], v[i])) {
                    result.error = lineError(
                        line_no, "bad integer '" + tokens[2 + i] + "'");
                    return result;
                }
            }
            model->addLayer(
                makeGemm(tokens[1], v[0], v[1], v[2], batch, v[3]));
        } else if (kind == "attention") {
            int v[3];
            if (tokens.size() != 5) {
                result.error = lineError(
                    line_no,
                    "expected: attention <name> <seq> <dmodel> <heads>");
                return result;
            }
            for (int i = 0; i < 3; ++i) {
                if (!parsePositive(tokens[2 + i], v[i])) {
                    result.error = lineError(
                        line_no, "bad integer '" + tokens[2 + i] + "'");
                    return result;
                }
            }
            if (v[1] % v[2] != 0) {
                result.error = lineError(
                    line_no, "dmodel must be divisible by heads");
                return result;
            }
            appendAttentionBlock(*model, tokens[1], v[0], v[1], v[2],
                                 batch);
        } else {
            result.error = lineError(
                line_no, "unknown layer kind '" + kind + "'");
            return result;
        }
    }

    if (!model) {
        result.error = "empty model description";
        return result;
    }
    if (model->layers().empty()) {
        result.error = "model has no layers";
        return result;
    }
    result.model = std::move(model);
    return result;
}

ParseResult
parseModelString(const std::string &text)
{
    std::istringstream ss(text);
    return parseModel(ss);
}

ParseResult
parseModelFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        ParseResult result;
        result.error = "cannot open '" + path + "'";
        return result;
    }
    ParseResult result = parseModel(in);
    if (!result.ok())
        result.error = path + ": " + result.error;
    return result;
}

StatusOr<Model>
loadModelFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return errNotFound("cannot open model file '%s'", path.c_str());
    ParseResult result = parseModel(in);
    if (!result.ok()) {
        return errInvalidArgument("%s: %s", path.c_str(),
                                  result.error.c_str());
    }
    return std::move(*result.model);
}

std::string
writeModelText(const Model &model)
{
    std::ostringstream ss;
    ss << "model " << model.name() << " " << model.inputResolution()
       << "\n";
    int batch = 1;
    for (const ConvLayer &l : model.layers()) {
        if (l.batch != batch) {
            batch = l.batch;
            ss << "batch " << batch << "\n";
        }
        if (l.op == LayerOp::Gemm) {
            ss << "gemm " << l.name << " " << l.gemmM << " " << l.gemmN
               << " " << l.gemmK;
            if (l.postOps > 0)
                ss << " " << l.postOps;
            ss << "\n";
        } else if (l.isDepthwise()) {
            // Both kernel dims: non-square depthwise kernels must
            // round-trip (the legacy one-dim form dropped kw).
            ss << "dwconv " << l.name << " " << l.ho << " " << l.wo
               << " " << l.co << " " << l.kh << " " << l.kw << " "
               << l.stride << "\n";
        } else if (l.ho == 1 && l.wo == 1 && l.isPointWise()) {
            ss << "fc " << l.name << " " << l.co << " " << l.ci << "\n";
        } else {
            ss << "conv " << l.name << " " << l.ho << " " << l.wo << " "
               << l.co << " " << l.ci << " " << l.kh << " " << l.kw
               << " " << l.stride << "\n";
        }
    }
    return ss.str();
}

} // namespace nnbaton
