/**
 * @file
 * ResNet-50 layer table (He et al., CVPR 2016).
 *
 * Bottleneck blocks are named res{stage}{block}_branch2{a,b,c} with the
 * projection shortcut as branch1, matching the Caffe/paper naming the
 * case studies use (res2a_branch2a is the point-wise example and
 * res2a_branch2b the common-layer example).  Downsampling stages place
 * the stride-2 convolution in branch2a (ResNet v1).
 */

#include "common/status.hpp"
#include "nn/model.hpp"

namespace nnbaton {

Model
makeResNet50(int resolution)
{
    if (resolution % 32 != 0)
        throwStatus(errInvalidArgument(
            "ResNet-50 resolution must be a multiple of 32, got %d",
            resolution));

    Model m("ResNet-50", resolution);
    const int r = resolution;

    // Stem: 7x7/2 convolution then 3x3/2 max-pool.
    m.addLayer(makeConv("conv1", r / 2, r / 2, 64, 3, 7, 7, 2));

    struct Stage
    {
        int id;          //!< stage number (2..5)
        int blocks;      //!< bottleneck blocks in the stage
        int mid;         //!< bottleneck (3x3) channels
        int out;         //!< expanded output channels
        int spatial;     //!< output spatial extent of the stage
        bool downsample; //!< stride-2 entry (stages 3..5)
    };
    const Stage stages[] = {
        {2, 3, 64, 256, r / 4, false},
        {3, 4, 128, 512, r / 8, true},
        {4, 6, 256, 1024, r / 16, true},
        {5, 3, 512, 2048, r / 32, true},
    };

    int in_channels = 64;
    for (const auto &st : stages) {
        for (int b = 0; b < st.blocks; ++b) {
            const std::string block = "res" + std::to_string(st.id) +
                                      std::string(1, char('a' + b));
            const bool first = b == 0;
            const int s = first && st.downsample ? 2 : 1;
            if (first) {
                // Projection shortcut to the expanded width.
                m.addLayer(makeConv(block + "_branch1", st.spatial,
                                    st.spatial, st.out, in_channels, 1, 1,
                                    s));
            }
            m.addLayer(makeConv(block + "_branch2a", st.spatial,
                                st.spatial, st.mid, in_channels, 1, 1, s));
            m.addLayer(makeConv(block + "_branch2b", st.spatial,
                                st.spatial, st.mid, st.mid, 3, 3, 1));
            m.addLayer(makeConv(block + "_branch2c", st.spatial,
                                st.spatial, st.out, st.mid, 1, 1, 1));
            in_channels = st.out;
        }
    }

    // Classifier after global average pooling.
    m.addLayer(makeFullyConnected("fc", 1000, 2048));
    return m;
}

} // namespace nnbaton
