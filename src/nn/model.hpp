/**
 * @file
 * DNN model container and the built-in model zoo.
 *
 * The zoo encodes the four benchmark networks of the paper (AlexNet,
 * VGG-16, ResNet-50, DarkNet-19) at the two input resolutions used in
 * the evaluation (224x224 for classification, 512x512 for detection).
 * Only CONV and FC layers are listed — the estimation in the paper
 * "calculates the CONV and FC layers", with FC reorganised into
 * point-wise layers.
 */

#ifndef NNBATON_NN_MODEL_HPP
#define NNBATON_NN_MODEL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace nnbaton {

/** A DNN model: an ordered list of conv/pointwise layer workloads. */
class Model
{
  public:
    Model(std::string name, int input_resolution)
        : name_(std::move(name)), inputResolution_(input_resolution)
    {
    }

    /** Model name, e.g. "VGG-16". */
    const std::string &name() const { return name_; }

    /** Input resolution the layer table was generated for (224 or 512). */
    int inputResolution() const { return inputResolution_; }

    /** Append a layer. */
    void addLayer(ConvLayer layer) { layers_.push_back(std::move(layer)); }

    /** All layers in execution order. */
    const std::vector<ConvLayer> &layers() const { return layers_; }

    /**
     * Multiply every layer's batch dimension by @p factor (the
     * `--batch` / serve `batch` knob).  Multiplicative so layers that
     * already fold heads into their batch (lowered attention) scale
     * with the sequence count instead of being overwritten.
     */
    void scaleBatch(int factor);

    /** Find a layer by name; throws StatusError(NotFound) if absent. */
    const ConvLayer &layer(const std::string &layer_name) const;

    /** Total MACs over all layers. */
    int64_t totalMacs() const;

    /** Total weight elements over all layers. */
    int64_t totalWeights() const;

    /** Largest per-layer activation footprint (input + output), elems. */
    int64_t peakActivations() const;

    /** One line per layer. */
    std::string toString() const;

  private:
    std::string name_;
    int inputResolution_;
    std::vector<ConvLayer> layers_;
};

/**
 * @name Model zoo
 * Builders for the paper's benchmark networks.  @p resolution selects
 * the input size and must be 224 or 512.
 * @{
 */
Model makeAlexNet(int resolution);
Model makeVgg16(int resolution);
Model makeResNet50(int resolution);
Model makeDarkNet19(int resolution);
Model makeMobileNetV2(int resolution);

/** BERT-base encoder stack (12 layers, d=768, 12 heads); @p resolution
 *  is the sequence length (the canonical table uses 128). */
Model makeBertBase(int resolution);

/** ViT-B/16 (patch embed + 12 encoders at seq 197 + head); @p
 *  resolution is the input image size (224 canonical). */
Model makeVitB16(int resolution);
/** @} */

/**
 * Append one multi-head self-attention block, lowered to its GEMM
 * sequence: fused QKV projection, per-head score GEMM with a
 * three-pass softmax (max / exp-sum / normalise) as vector post-ops,
 * per-head context GEMM, and the output projection.  Heads fold into
 * the batch dimension of the per-head GEMMs.  @p seq tokens, model
 * width @p d_model divisible by @p heads, @p batch sequences.
 */
void appendAttentionBlock(Model &model, const std::string &prefix,
                          int seq, int d_model, int heads, int batch);

/** Names of the five representative layers used in figures 11 and 12. */
struct RepresentativeLayers
{
    ConvLayer activationIntensive; //!< VGG-16 conv1
    ConvLayer weightIntensive;     //!< VGG-16 conv12
    ConvLayer largeKernel;         //!< ResNet-50 conv1
    ConvLayer pointWise;           //!< ResNet-50 res2a_branch2a
    ConvLayer common;              //!< ResNet-50 res2a_branch2b
};

/** Extract the five case-study layers for a given input resolution. */
RepresentativeLayers representativeLayers(int resolution);

} // namespace nnbaton

#endif // NNBATON_NN_MODEL_HPP
