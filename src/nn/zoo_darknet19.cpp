/**
 * @file
 * DarkNet-19 layer table (Redmon & Farhadi, YOLO9000).
 *
 * Nineteen convolutions: alternating 3x3 expansions and 1x1
 * bottlenecks, with 2x2 max-pooling between stages, ending in a 1x1
 * 1000-way classifier convolution.
 */

#include "common/status.hpp"
#include "nn/model.hpp"

namespace nnbaton {

Model
makeDarkNet19(int resolution)
{
    if (resolution % 32 != 0)
        throwStatus(errInvalidArgument(
            "DarkNet-19 resolution must be a multiple of 32, got %d",
            resolution));

    Model m("DarkNet-19", resolution);
    const int r = resolution;

    struct L
    {
        int spatial;
        int co;
        int ci;
        int k;
    };
    const L table[] = {
        {r, 32, 3, 3},
        {r / 2, 64, 32, 3},
        {r / 4, 128, 64, 3},
        {r / 4, 64, 128, 1},
        {r / 4, 128, 64, 3},
        {r / 8, 256, 128, 3},
        {r / 8, 128, 256, 1},
        {r / 8, 256, 128, 3},
        {r / 16, 512, 256, 3},
        {r / 16, 256, 512, 1},
        {r / 16, 512, 256, 3},
        {r / 16, 256, 512, 1},
        {r / 16, 512, 256, 3},
        {r / 32, 1024, 512, 3},
        {r / 32, 512, 1024, 1},
        {r / 32, 1024, 512, 3},
        {r / 32, 512, 1024, 1},
        {r / 32, 1024, 512, 3},
    };

    int index = 1;
    for (const auto &l : table) {
        m.addLayer(makeConv("conv" + std::to_string(index), l.spatial,
                            l.spatial, l.co, l.ci, l.k, l.k, 1));
        ++index;
    }
    // Final 1x1 classifier convolution before global average pooling.
    m.addLayer(makeConv("conv19", r / 32, r / 32, 1000, 1024, 1, 1, 1));
    return m;
}

} // namespace nnbaton
