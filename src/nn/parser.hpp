/**
 * @file
 * Text-format model parser.
 *
 * The paper parses workloads from PyTorch via torch.jit; this repo
 * substitutes a line-based text format carrying exactly the
 * information the tool consumes (layer shapes).  Format:
 *
 * @code
 *   # comment lines and blank lines are ignored
 *   model <name> <input-resolution>
 *   batch  <n>
 *   conv   <name> <ho> <wo> <co> <ci> <kh> <kw> <stride>
 *   dwconv <name> <ho> <wo> <channels> <kh> <kw> <stride>
 *   fc     <name> <out-features> <in-features>
 *   gemm   <name> <M> <N> <K> [postops]
 *   attention <name> <seq> <dmodel> <heads>
 * @endcode
 *
 * `dwconv` also accepts the legacy square-kernel form with a single
 * <k> column; the writer always emits both kernel dims so non-square
 * depthwise kernels round-trip.
 *
 * `batch` is a stateful directive: it sets the batch dimension of
 * every subsequent layer (initially 1) until the next `batch` line.
 * `gemm` appends one native M x N x K matmul; `postops` counts
 * post-MAC vector passes over the output (e.g. 3 for softmax).
 * `attention` expands in place to the lowered GEMM sequence of one
 * multi-head self-attention block (`<name>_qkv`, `_scores`, `_ctx`,
 * `_proj`); the per-head GEMMs fold the heads into their batch, and
 * the writer re-emits the lowered form, which round-trips exactly.
 *
 * The `model` line must come first; every other line appends a layer
 * in execution order.
 */

#ifndef NNBATON_NN_PARSER_HPP
#define NNBATON_NN_PARSER_HPP

#include <istream>
#include <optional>
#include <string>

#include "common/status.hpp"
#include "nn/model.hpp"

namespace nnbaton {

/** Parse result: the model or a line-tagged error message. */
struct ParseResult
{
    std::optional<Model> model;
    std::string error; //!< empty on success, else "line N: ..."

    bool ok() const { return model.has_value(); }
};

/** Parse a model description from a stream. */
ParseResult parseModel(std::istream &in);

/** Parse a model description from a string. */
ParseResult parseModelString(const std::string &text);

/** Parse a model description from a file; error mentions the path. */
ParseResult parseModelFile(const std::string &path);

/** parseModelFile() as a StatusOr: errNotFound when the file cannot
 *  be opened, errInvalidArgument for a malformed description. */
StatusOr<Model> loadModelFile(const std::string &path);

/** Serialise a model back to the text format (round-trippable). */
std::string writeModelText(const Model &model);

} // namespace nnbaton

#endif // NNBATON_NN_PARSER_HPP
