/**
 * @file
 * Transformer-era workloads: BERT-base (Devlin et al., NAACL 2019)
 * and ViT-B/16 (Dosovitskiy et al., ICLR 2021), lowered to the GEMM
 * sequence the accelerator executes.
 *
 * Multi-head self-attention lowers to four GEMMs per block: a fused
 * QKV projection, the per-head score GEMM (softmaxed in three vector
 * passes: row max, exp-sum, normalise), the per-head context GEMM,
 * and the output projection.  The per-head GEMMs fold the head count
 * into their batch dimension — each head is an independent matmul
 * over the same mapping, exactly what the batch loop models.  The
 * two-layer feed-forward block is two plain GEMMs.
 */

#include "common/status.hpp"
#include "nn/model.hpp"

namespace nnbaton {

void
appendAttentionBlock(Model &model, const std::string &prefix, int seq,
                     int d_model, int heads, int batch)
{
    if (seq <= 0 || d_model <= 0 || heads <= 0 || batch <= 0 ||
        d_model % heads != 0) {
        throwStatus(errInvalidArgument(
            "attention %s: bad shape (seq=%d dmodel=%d heads=%d "
            "batch=%d); dmodel must be a positive multiple of heads",
            prefix.c_str(), seq, d_model, heads, batch));
    }
    const int d_head = d_model / heads;
    // Softmax over each score row: max, exp-and-sum, normalise.
    const int kSoftmaxPasses = 3;
    model.addLayer(makeGemm(prefix + "_qkv", seq, 3 * d_model, d_model,
                            batch));
    model.addLayer(makeGemm(prefix + "_scores", seq, seq, d_head,
                            batch * heads, kSoftmaxPasses));
    model.addLayer(makeGemm(prefix + "_ctx", seq, d_head, seq,
                            batch * heads));
    model.addLayer(makeGemm(prefix + "_proj", seq, d_model, d_model,
                            batch));
}

namespace {

/** One encoder block: attention plus the two FFN GEMMs. */
void
appendEncoder(Model &m, const std::string &prefix, int seq, int d_model,
              int heads, int ffn, int batch)
{
    appendAttentionBlock(m, prefix + "_attn", seq, d_model, heads,
                         batch);
    m.addLayer(makeGemm(prefix + "_ffn1", seq, ffn, d_model, batch));
    m.addLayer(makeGemm(prefix + "_ffn2", seq, d_model, ffn, batch));
}

} // namespace

Model
makeBertBase(int resolution)
{
    const int seq = resolution; // sequence length (canonical 128)
    if (seq < 2) {
        throwStatus(errInvalidArgument(
            "BERT-base sequence length too small: %d", seq));
    }
    Model m("BERT-base", seq);
    for (int i = 1; i <= 12; ++i)
        appendEncoder(m, "enc" + std::to_string(i), seq, 768, 12, 3072,
                      1);
    return m;
}

Model
makeVitB16(int resolution)
{
    if (resolution < 16 || resolution % 16 != 0) {
        throwStatus(errInvalidArgument(
            "ViT-B/16 resolution must be a positive multiple of 16, "
            "got %d",
            resolution));
    }
    const int grid = resolution / 16;   // patches per side
    const int seq = grid * grid + 1;    // plus the class token
    Model m("ViT-B-16", resolution);
    // Patch embedding: a 16x16/16 convolution over the RGB input.
    m.addLayer(makeConv("patch_embed", grid, grid, 768, 3, 16, 16, 16));
    for (int i = 1; i <= 12; ++i)
        appendEncoder(m, "enc" + std::to_string(i), seq, 768, 12, 3072,
                      1);
    m.addLayer(makeFullyConnected("head", 1000, 768));
    return m;
}

} // namespace nnbaton
