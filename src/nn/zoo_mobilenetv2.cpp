/**
 * @file
 * MobileNetV2 layer table (Sandler et al., CVPR 2018 — cited as
 * workload [53] in the paper).
 *
 * Inverted residual blocks: a 1x1 expansion (x6), a 3x3 depthwise
 * convolution (stride 1 or 2), and a 1x1 linear projection.  This
 * model exercises the depthwise extension of the framework: the
 * weight-centric baseline cannot fill its CI-split rows on depthwise
 * layers, while the output-centric dataflow parallelises the plane.
 */

#include "common/status.hpp"
#include "nn/model.hpp"

namespace nnbaton {

Model
makeMobileNetV2(int resolution)
{
    if (resolution % 32 != 0)
        throwStatus(errInvalidArgument(
            "MobileNetV2 resolution must be a multiple of 32, got %d",
            resolution));

    Model m("MobileNetV2", resolution);
    const int r = resolution;

    // Stem: 3x3/2 convolution to 32 channels.
    m.addLayer(makeConv("conv1", r / 2, r / 2, 32, 3, 3, 3, 2));

    struct Stage
    {
        int expansion; //!< t: expansion factor
        int out;       //!< c: output channels
        int blocks;    //!< n: repeated blocks
        int stride;    //!< s: stride of the first block
    };
    // The (t, c, n, s) table of the MobileNetV2 paper.
    const Stage stages[] = {
        {1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},
        {6, 64, 4, 2},  {6, 96, 3, 1},  {6, 160, 3, 2},
        {6, 320, 1, 1},
    };

    int in_channels = 32;
    int spatial = r / 2;
    int block_id = 1;
    for (const auto &st : stages) {
        for (int b = 0; b < st.blocks; ++b) {
            const int s = b == 0 ? st.stride : 1;
            const int out_spatial = spatial / s;
            const int expanded = in_channels * st.expansion;
            const std::string base =
                "block" + std::to_string(block_id);
            if (st.expansion != 1) {
                m.addLayer(makeConv(base + "_expand", spatial, spatial,
                                    expanded, in_channels, 1, 1, 1));
            }
            m.addLayer(makeDepthwiseConv(base + "_dw", out_spatial,
                                         out_spatial, expanded, 3, s));
            m.addLayer(makeConv(base + "_project", out_spatial,
                                out_spatial, st.out, expanded, 1, 1,
                                1));
            in_channels = st.out;
            spatial = out_spatial;
            ++block_id;
        }
    }

    // Head: 1x1 to 1280 channels, then the classifier.
    m.addLayer(makeConv("conv_head", spatial, spatial, 1280,
                        in_channels, 1, 1, 1));
    m.addLayer(makeFullyConnected("fc", 1000, 1280));
    return m;
}

} // namespace nnbaton
