/**
 * @file
 * VGG-16 layer table (Simonyan & Zisserman, ICLR 2015).
 *
 * Convolutions are numbered conv1..conv13 as in the paper's case
 * studies ("VGG-16 conv1" is the activation-intensive example and
 * "conv12" the weight-intensive one).  The three FC layers are
 * reorganised into point-wise layers (paper section VI-A.2); their
 * shapes use the canonical 224x224 classifier head at both resolutions
 * since the paper reuses the same weights for the detection-resolution
 * sweep.
 */

#include "common/status.hpp"
#include "nn/model.hpp"

namespace nnbaton {

Model
makeVgg16(int resolution)
{
    if (resolution % 32 != 0)
        throwStatus(errInvalidArgument(
            "VGG-16 resolution must be a multiple of 32, got %d",
            resolution));

    Model m("VGG-16", resolution);
    const int r = resolution;

    struct Stage
    {
        int spatial;
        int channels;
        int convs;
    };
    // Five stages of 3x3 convolutions separated by 2x2 max-pooling.
    const Stage stages[] = {
        {r, 64, 2},      {r / 2, 128, 2}, {r / 4, 256, 3},
        {r / 8, 512, 3}, {r / 16, 512, 3},
    };

    int index = 1;
    int prev_channels = 3;
    for (const auto &st : stages) {
        for (int c = 0; c < st.convs; ++c) {
            m.addLayer(makeConv("conv" + std::to_string(index), st.spatial,
                                st.spatial, st.channels, prev_channels, 3,
                                3, 1));
            prev_channels = st.channels;
            ++index;
        }
    }

    // Classifier head, reorganised as point-wise layers.
    m.addLayer(makeFullyConnected("fc14", 4096, 512 * 7 * 7));
    m.addLayer(makeFullyConnected("fc15", 4096, 4096));
    m.addLayer(makeFullyConnected("fc16", 1000, 4096));
    return m;
}

} // namespace nnbaton
